// Access instrumentation for the race verifier — the recording half of a
// ThreadSanitizer-for-the-DAG (see verifier.hpp for the checking half).
//
// Task bodies annotate every solver-state access with the *object class*
// they touch: a cell's conserved state, or one side of a face's flux
// accumulator. Records land in per-worker buffers of an AccessLog (no
// cross-thread contention on the hot path), tagged with the task id the
// runtime is currently executing, and are merged and deduplicated when
// the happens-before checker runs.
//
// Zero cost when disabled: the record_* functions are a single
// thread-local pointer load + branch unless a TaskRecordScope is active
// on the calling thread, so the uninstrumented solver and runtime paths
// are unchanged.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/runtime.hpp"
#include "support/check.hpp"
#include "support/types.hpp"

namespace tamp::verify {

/// The solver-state object classes whose accesses are tracked. One
/// (kind, object-id) pair names one independently-racing memory region:
/// all kNumVars components of a cell's state share one fate, as do the
/// kNumVars slots of one side of a face accumulator.
enum class ObjectKind : std::uint8_t {
  cell_state = 0,      ///< u_[*][cell] / phi_[cell]
  face_acc_side0 = 1,  ///< acc_[0][*][face]
  face_acc_side1 = 2,  ///< acc_[1][*][face]
};
inline constexpr int kNumObjectKinds = 3;

[[nodiscard]] const char* to_string(ObjectKind kind);

enum class AccessMode : std::uint8_t { read = 0, write = 1 };

/// One recorded access: task `task` touched (`kind`, `object`).
struct Access {
  index_t task = invalid_index;
  index_t object = invalid_index;
  ObjectKind kind = ObjectKind::cell_state;
  AccessMode mode = AccessMode::read;

  friend bool operator==(const Access&, const Access&) = default;
};

/// One recorded range access: task `task` touched every object of `kind`
/// in [begin, end). The range form exists for the contiguous streaming
/// sweeps of the locality layout: annotating a range-valued task costs
/// O(1) per range instead of O(objects). Semantically a RangeAccess is
/// exactly the per-object records it expands to — AccessLog::merged()
/// performs the expansion, so the happens-before checker is unchanged.
struct RangeAccess {
  index_t task = invalid_index;
  index_t begin = 0;
  index_t end = 0;  ///< exclusive
  ObjectKind kind = ObjectKind::cell_state;
  AccessMode mode = AccessMode::read;

  friend bool operator==(const RangeAccess&, const RangeAccess&) = default;
};

/// Accumulates the accesses of one (or several, for multi-schedule
/// sweeps) instrumented executions. Thread-safe on the recording side via
/// per-thread buffers; analysis-side methods must not run concurrently
/// with recording.
class AccessLog {
public:
  explicit AccessLog(index_t num_tasks);
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  [[nodiscard]] index_t num_tasks() const { return num_tasks_; }

  /// Raw records across all worker buffers (duplicates included; a range
  /// record counts once, not per object).
  [[nodiscard]] std::size_t num_records() const;

  /// All records merged, deduplicated on (task, kind, object, mode) and
  /// sorted by (kind, object, task, mode). A task that both read and
  /// wrote an object keeps both records.
  [[nodiscard]] std::vector<Access> merged() const;

  /// The calling worker's buffer pair (per-object + range records),
  /// registered on first use and cached thread-locally (keyed by a
  /// process-unique log id, so a cache entry can never outlive its log
  /// into a look-alike successor). Used by TaskRecordScope; exposed for
  /// tests.
  struct WorkerBuffers {
    std::vector<Access> accesses;
    std::vector<RangeAccess> ranges;
  };
  WorkerBuffers& thread_buffer();

  /// Number of per-worker buffers registered so far.
  [[nodiscard]] std::size_t num_worker_buffers() const;

private:
  index_t num_tasks_;
  std::uint64_t id_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerBuffers>> buffers_;
};

namespace detail {
/// Thread-local recording state: null buffer = recording disabled.
struct ThreadRecorder {
  AccessLog::WorkerBuffers* buffer = nullptr;
  index_t task = invalid_index;
};
inline thread_local ThreadRecorder tl_recorder;
}  // namespace detail

/// Is an instrumented task scope active on this thread?
[[nodiscard]] inline bool recording_active() {
  return detail::tl_recorder.buffer != nullptr;
}

/// Record one access of the currently-executing task. No-op (one
/// thread-local load + branch) outside a TaskRecordScope.
inline void record_access(ObjectKind kind, index_t object, AccessMode mode) {
  detail::ThreadRecorder& r = detail::tl_recorder;
  if (r.buffer == nullptr) return;
  r.buffer->accesses.push_back(Access{r.task, object, kind, mode});
}
inline void record_read(ObjectKind kind, index_t object) {
  record_access(kind, object, AccessMode::read);
}
inline void record_write(ObjectKind kind, index_t object) {
  record_access(kind, object, AccessMode::write);
}

/// Record one access covering every object of `kind` in [begin, end) —
/// O(1) however many objects the range spans. Equivalent to calling
/// record_access once per object; empty ranges are dropped.
inline void record_access_range(ObjectKind kind, index_t begin, index_t end,
                                AccessMode mode) {
  detail::ThreadRecorder& r = detail::tl_recorder;
  if (r.buffer == nullptr || begin >= end) return;
  r.buffer->ranges.push_back(RangeAccess{r.task, begin, end, kind, mode});
}
inline void record_read_range(ObjectKind kind, index_t begin, index_t end) {
  record_access_range(kind, begin, end, AccessMode::read);
}
inline void record_write_range(ObjectKind kind, index_t begin, index_t end) {
  record_access_range(kind, begin, end, AccessMode::write);
}

/// RAII: route this thread's record_* calls into `log` under `task`'s id
/// for the scope's lifetime. Nests correctly (restores the previous
/// recorder) and is exception-safe.
class TaskRecordScope {
public:
  TaskRecordScope(AccessLog& log, index_t task)
      : previous_(detail::tl_recorder) {
    TAMP_EXPECTS(task >= 0 && task < log.num_tasks(), "task id out of range");
    detail::tl_recorder = {&log.thread_buffer(), task};
  }
  ~TaskRecordScope() { detail::tl_recorder = previous_; }
  TaskRecordScope(const TaskRecordScope&) = delete;
  TaskRecordScope& operator=(const TaskRecordScope&) = delete;

private:
  detail::ThreadRecorder previous_;
};

/// Wrap `body` so every task execution records its accesses into `log`.
/// The wrapper is what runtime::execute (or collect_serial) runs.
[[nodiscard]] runtime::TaskBody instrument(runtime::TaskBody body,
                                           AccessLog& log);

}  // namespace tamp::verify
