// Happens-before checker — the judging half of the race verifier.
//
// Input: a TaskGraph and an AccessLog recorded by instrumented task
// bodies (access.hpp). Two accesses *conflict* when different tasks
// touch the same (kind, object) and at least one writes. The checker
// replays the deduplicated log against DAG reachability
// (reachability.hpp) and reports every conflicting task pair that no
// dependency path orders — i.e. every schedule-dependent outcome the
// declared dependencies fail to rule out. A clean report is the proof
// behind euler.hpp's "data-race-free under parallel task execution"
// claim: every accumulator side and every cell state has its writers and
// readers totally ordered by the graph.
//
// The verdict is schedule-independent: it only needs the access sets,
// not the interleaving that produced them, so logs may come from a
// serial replay (collect_serial) or from any number of real parallel /
// adversarial executions merged into one log.
#pragma once

#include <string>
#include <vector>

#include "verify/access.hpp"

namespace tamp::verify {

/// One unordered conflicting task pair (aggregated over all objects of
/// one kind the pair races on).
struct Conflict {
  index_t first = invalid_index;   ///< lower task id of the pair
  index_t second = invalid_index;  ///< higher task id
  ObjectKind kind = ObjectKind::cell_state;
  AccessMode first_mode = AccessMode::read;
  AccessMode second_mode = AccessMode::read;
  index_t object = invalid_index;  ///< first witness object id
  index_t occurrences = 0;         ///< objects of `kind` this pair races on
};

struct RaceReport {
  std::vector<Conflict> conflicts;
  std::size_t accesses = 0;       ///< deduplicated access records
  std::size_t pairs_checked = 0;  ///< distinct (pair, kind) orderings probed
  std::size_t dfs_fallbacks = 0;  ///< reachability queries past the labels

  [[nodiscard]] bool clean() const { return conflicts.empty(); }
  /// Human-readable report: task labels, object class, witness object,
  /// and the missing edge, one line per conflict.
  [[nodiscard]] std::string summary(const taskgraph::TaskGraph& graph) const;
};

/// Check every conflicting access pair in `log` against `graph`'s
/// reachability. `log.num_tasks()` must match the graph.
[[nodiscard]] RaceReport check_races(const taskgraph::TaskGraph& graph,
                                     const AccessLog& log);

/// Record `body`'s accesses by running every task serially in
/// topological order — collection does not need real threads, because
/// the checker's verdict depends only on the access sets. Appends into
/// `log` (which must be sized for `graph`).
void collect_serial(const taskgraph::TaskGraph& graph,
                    const runtime::TaskBody& body, AccessLog& log);

/// Close a dirty-task mask over one dependency hop: the returned mask
/// additionally flags every direct predecessor and successor of a dirty
/// task. This is the replay region of a dirty-region re-certification —
/// every ordering constraint a patched task participates in has both
/// endpoints inside it.
[[nodiscard]] std::vector<char> region_closure(
    const taskgraph::TaskGraph& graph, const std::vector<char>& dirty);

/// Result of a dirty-region re-certification (check_races_region).
struct RegionReport {
  RaceReport races;
  index_t dirty_tasks = 0;   ///< tasks flagged dirty by the caller
  index_t region_tasks = 0;  ///< dirty ∪ one dependency hop — tasks replayed

  [[nodiscard]] bool clean() const { return races.clean(); }
};

/// Re-certify only the dirty region of a patched task graph.
///
/// `dirty` flags the tasks the patcher touched (dirty[t] != 0); the
/// region replayed is that set closed by one dependency hop (direct
/// predecessors and successors), whose access sets bound every ordering
/// constraint a patched task participates in. Only region task bodies
/// run (serially, in full-graph topological order), but the recorded
/// accesses are checked against the FULL graph's reachability — paths
/// through untouched tasks still count as ordering, so the check is
/// sound (no false races from severed paths) while costing only
/// O(region) task executions instead of O(graph).
///
/// What this proves: no unordered conflicting pair involves a replayed
/// task. Untouched-vs-untouched pairs are certified by the previous full
/// verification plus the patcher's equivalence oracle (taskgraph/patch.hpp),
/// which guarantees the patched graph is bit-identical to a from-scratch
/// rebuild.
[[nodiscard]] RegionReport check_races_region(
    const taskgraph::TaskGraph& graph, const std::vector<char>& dirty,
    const runtime::TaskBody& body);

}  // namespace tamp::verify
