// Surgical TaskGraph edits for the verifier's own test harness:
// mutation testing (drop one dependency edge and prove the checker sees
// the hole) and per-subiteration slicing (execute one subiteration's
// induced subgraph at a time so invariants can be probed at the
// boundaries of a genuinely parallel run).
#pragma once

#include <utility>
#include <vector>

#include "support/types.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::verify {

/// Every dependency edge of `graph` as (predecessor, successor) pairs.
[[nodiscard]] std::vector<std::pair<index_t, index_t>> dependency_edges(
    const taskgraph::TaskGraph& graph);

/// A copy of `graph` without the dependency edge from → to. Throws
/// precondition_error if the edge does not exist.
[[nodiscard]] taskgraph::TaskGraph remove_dependency(
    const taskgraph::TaskGraph& graph, index_t from, index_t to);

/// Induced subgraph over the tasks with keep[t] != 0: kept tasks,
/// renumbered densely, with the dependencies among them; edges to or
/// from dropped tasks disappear. `original_task[new_id]` maps back.
struct InducedSubgraph {
  taskgraph::TaskGraph graph;
  std::vector<index_t> original_task;
};
[[nodiscard]] InducedSubgraph filter_tasks(const taskgraph::TaskGraph& graph,
                                           const std::vector<char>& keep);

}  // namespace tamp::verify
