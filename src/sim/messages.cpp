#include "sim/messages.hpp"

#include <algorithm>
#include <cstdint>

namespace tamp::sim {

MessageStats message_statistics(
    const taskgraph::TaskGraph& graph,
    const std::vector<part_t>& domain_to_process) {
  MessageStats stats;
  std::vector<std::uint64_t> triples;   // (src, dst, subiteration)
  std::vector<std::uint64_t> pairs;     // (src, dst)
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const auto& task = graph.task(t);
    TAMP_EXPECTS(static_cast<std::size_t>(task.domain) <
                     domain_to_process.size(),
                 "task domain outside process map");
    const part_t src = domain_to_process[static_cast<std::size_t>(task.domain)];
    for (const index_t s : graph.successors(t)) {
      const part_t dst =
          domain_to_process[static_cast<std::size_t>(graph.task(s).domain)];
      if (dst == src) continue;
      ++stats.crossing_edges;
      stats.volume += task.num_objects;
      // The message is sent in the producer's subiteration.
      triples.push_back(static_cast<std::uint64_t>(src) << 40 |
                        static_cast<std::uint64_t>(dst) << 16 |
                        static_cast<std::uint64_t>(task.subiteration));
      pairs.push_back(static_cast<std::uint64_t>(src) << 32 |
                      static_cast<std::uint64_t>(dst));
    }
  }
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  stats.messages = static_cast<index_t>(triples.size());
  stats.process_pairs = static_cast<index_t>(pairs.size());
  return stats;
}

}  // namespace tamp::sim
