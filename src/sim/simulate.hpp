// FLUSIM — the paper's dedicated execution simulator (§III-A), rebuilt.
//
// Inputs: a task graph, a domain→process map, and a cluster configuration
// (number of processes × workers per process). Tasks are pinned to the
// process owning their domain (FLUSEPA's execution model: StarPU
// schedules within a process; MPI owns the distribution). The simulator
// performs event-driven list scheduling in an idealized environment — by
// default no communication or runtime overhead is modelled, exactly as
// the paper's FLUSIM; an optional communication-delay model supports the
// production-validation experiments (Fig 13).
#pragma once

#include <string>
#include <vector>

#include "support/gantt.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::sim {

/// Emulated cluster: processes × workers (paper: "we specify the number
/// of nodes and the number of workers per node").
struct ClusterConfig {
  part_t num_processes = 1;
  /// Workers per process; 0 = unbounded (the paper's Fig 6 experiment).
  int workers_per_process = 1;

  [[nodiscard]] bool unbounded() const { return workers_per_process <= 0; }
};

/// Scheduling policy applied within each process.
enum class Policy {
  eager_fifo,     ///< ready tasks run in readiness order (StarPU eager)
  eager_lifo,     ///< most recently readied first
  critical_path,  ///< longest downstream path first (HEFT-like rank)
  random_order,   ///< uniformly random among ready tasks
};

[[nodiscard]] const char* to_string(Policy p);
Policy parse_policy(const std::string& name);

/// Optional communication cost on cross-process dependency edges.
struct CommModel {
  simtime_t latency = 0.0;            ///< fixed delay per crossing edge
  simtime_t per_object = 0.0;         ///< + per object of the producer task
  [[nodiscard]] bool enabled() const { return latency > 0 || per_object > 0; }
};

struct SimOptions {
  ClusterConfig cluster;
  Policy policy = Policy::eager_fifo;
  CommModel comm;  ///< zero by default (idealised FLUSIM)
  /// Fixed per-task runtime-management cost added to every execution
  /// (StarPU-style submission/scheduling overhead). Zero by default —
  /// the paper's FLUSIM models no overheads — but essential when studying
  /// granularity: without it, infinitely fine domains look free (§IX).
  simtime_t task_overhead = 0;
  std::uint64_t seed = 1;  ///< only used by Policy::random_order
};

/// When and where each task ran.
struct TaskTiming {
  simtime_t start = 0;
  simtime_t end = 0;
  part_t process = 0;
  int worker = 0;  ///< worker index within the process
};

/// Ready-queue depth of one process at one simulated instant, sampled
/// whenever the scheduler touches that process. Exported as Chrome-trace
/// counter events (queue starvation is the visual signature of the
/// paper's level-imbalance pathology).
struct QueueDepthSample {
  simtime_t time = 0;
  part_t process = 0;
  index_t depth = 0;  ///< ready tasks left after dispatching
};

/// Outcome of a simulation.
struct SimResult {
  simtime_t makespan = 0;
  std::vector<TaskTiming> timing;       ///< per task id
  part_t num_processes = 0;
  std::vector<int> workers_used;        ///< per process (≤ configured, or
                                        ///< peak concurrency if unbounded)
  std::vector<simtime_t> busy_per_process;
  std::vector<QueueDepthSample> queue_depth;  ///< chronological samples

  /// Fraction of process-time spent busy, with the worker count actually
  /// configured (unbounded mode uses the peak).
  [[nodiscard]] double occupancy() const;
  /// Idle fraction of one process.
  [[nodiscard]] double idle_fraction(part_t p) const;

  /// Build a Gantt trace. One row per worker when `per_worker`, else one
  /// aggregated row per process (a process row is busy when ≥1 of its
  /// workers is, the paper's Fig 6 view). Spans are coloured by
  /// subiteration.
  [[nodiscard]] GanttTrace gantt(const taskgraph::TaskGraph& graph,
                                 bool per_worker,
                                 const std::string& title) const;
};

/// Run the simulation. `domain_to_process[d]` pins every task of domain d.
SimResult simulate(const taskgraph::TaskGraph& graph,
                   const std::vector<part_t>& domain_to_process,
                   const SimOptions& opts);

}  // namespace tamp::sim
