#include "sim/measured.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace tamp::sim {

SimResult to_sim_result(const runtime::ExecutionReport& report) {
  TAMP_EXPECTS(report.num_processes > 0 && report.workers_per_process > 0,
               "execution report has no worker capacity");
  SimResult out;
  out.num_processes = report.num_processes;
  out.workers_used.assign(static_cast<std::size_t>(report.num_processes),
                          report.workers_per_process);
  out.busy_per_process.assign(static_cast<std::size_t>(report.num_processes),
                              0.0);
  out.timing.reserve(report.spans.size());
  simtime_t latest = 0;
  for (const runtime::ExecutionReport::Span& span : report.spans) {
    TaskTiming t;
    t.start = span.start;
    t.end = span.end;
    t.process = span.process;
    t.worker = span.worker;
    out.timing.push_back(t);
    out.busy_per_process[static_cast<std::size_t>(span.process)] +=
        span.end - span.start;
    latest = std::max(latest, static_cast<simtime_t>(span.end));
  }
  // The runtime stamps wall_seconds after joining its workers, so it
  // bounds every span end; keep the max defensive for hand-built reports.
  out.makespan = std::max(static_cast<simtime_t>(report.wall_seconds), latest);
  if (report.flight) {
    for (int w = 0; w < report.flight->num_workers(); ++w) {
      const part_t process =
          static_cast<part_t>(w / report.workers_per_process);
      for (const obs::FlightEvent& ev : report.flight->ring(w).events()) {
        if (ev.kind != obs::FlightEventKind::task_dequeue) continue;
        QueueDepthSample sample;
        sample.time = ev.t_seconds;
        sample.process = process;
        sample.depth = static_cast<index_t>(ev.b < 0 ? 0 : ev.b);
        out.queue_depth.push_back(sample);
      }
    }
    std::sort(out.queue_depth.begin(), out.queue_depth.end(),
              [](const QueueDepthSample& a, const QueueDepthSample& b) {
                return a.time < b.time ||
                       (a.time == b.time && a.process < b.process);
              });
  }
  return out;
}

DoctorReport diagnose_measured(const taskgraph::TaskGraph& graph,
                               const runtime::ExecutionReport& report) {
  DoctorReport out = diagnose(graph, to_sim_result(report));
  // Every field of the diagnosis derives from the measured timestamps
  // except the static lower bound, which is a longest path over graph
  // *cost units* — rescale it with the measured seconds-per-unit so the
  // realized/static ratio compares like with like.
  double cost_units = 0, real_seconds = 0;
  for (index_t t = 0; t < graph.num_tasks(); ++t)
    cost_units += graph.task(t).cost;
  for (const runtime::ExecutionReport::Span& span : report.spans)
    real_seconds += span.end - span.start;
  if (cost_units > 0)
    out.critical.static_lower_bound *= real_seconds / cost_units;
  return out;
}

namespace {

/// Relative window-share gaps divide by the sim share floored at 5% of
/// the makespan, so negligible windows cannot blow the metric up.
constexpr double kWindowShareFloor = 0.05;

/// Idle worker-time of window s across all processes / window capacity.
double window_idle_share(const IdleBlameReport& blame, index_t s) {
  const simtime_t begin =
      s == 0 ? 0.0 : blame.window_end[static_cast<std::size_t>(s - 1)];
  const simtime_t end = blame.window_end[static_cast<std::size_t>(s)];
  double idle = 0, capacity = 0;
  for (part_t p = 0; p < blame.num_processes; ++p) {
    for (int c = 0; c < kNumIdleCauses; ++c)
      idle += blame.at(p, s, static_cast<IdleCause>(c));
    capacity +=
        static_cast<double>(blame.workers[static_cast<std::size_t>(p)]) *
        (end - begin);
  }
  return capacity > 0 ? idle / capacity : 0.0;
}

}  // namespace

DivergenceReport compare_sim_to_measured(const taskgraph::TaskGraph& graph,
                                         const SimResult& sim,
                                         const runtime::ExecutionReport& real,
                                         double seconds_per_unit) {
  TAMP_EXPECTS(sim.timing.size() == static_cast<std::size_t>(graph.num_tasks()),
               "simulation result does not match the task graph");
  TAMP_EXPECTS(real.spans.size() == static_cast<std::size_t>(graph.num_tasks()),
               "execution report does not match the task graph");
  const SimResult measured = to_sim_result(real);

  DivergenceReport d;
  d.sim_makespan = sim.makespan;
  d.real_makespan_seconds = measured.makespan;
  if (seconds_per_unit <= 0) {
    // Auto-calibrate: total measured task seconds per simulated task
    // unit, so the comparison isolates scheduling drift from cost-model
    // miscalibration.
    double sim_units = 0, real_seconds = 0;
    for (std::size_t t = 0; t < sim.timing.size(); ++t) {
      sim_units += sim.timing[t].end - sim.timing[t].start;
      real_seconds += measured.timing[t].end - measured.timing[t].start;
    }
    seconds_per_unit = sim_units > 0 ? real_seconds / sim_units : 1.0;
  }
  d.seconds_per_unit = seconds_per_unit;
  d.sim_makespan_seconds = sim.makespan * seconds_per_unit;
  d.rel_makespan_gap =
      d.sim_makespan_seconds > 0
          ? (d.real_makespan_seconds - d.sim_makespan_seconds) /
                d.sim_makespan_seconds
          : 0.0;
  d.sim_idle_share = 1.0 - sim.occupancy();
  d.real_idle_share = 1.0 - measured.occupancy();
  d.idle_share_gap = d.real_idle_share - d.sim_idle_share;

  const IdleBlameReport sim_blame = idle_blame(graph, sim);
  const IdleBlameReport real_blame = idle_blame(graph, measured);
  const index_t nsub = sim_blame.num_subiterations;
  for (index_t s = 0; s < nsub; ++s) {
    SubiterationDivergence sub;
    sub.subiteration = s;
    const simtime_t sb =
        s == 0 ? 0.0 : sim_blame.window_end[static_cast<std::size_t>(s - 1)];
    const simtime_t se = sim_blame.window_end[static_cast<std::size_t>(s)];
    const simtime_t rb =
        s == 0 ? 0.0 : real_blame.window_end[static_cast<std::size_t>(s - 1)];
    const simtime_t re = real_blame.window_end[static_cast<std::size_t>(s)];
    sub.sim_window_share =
        sim_blame.makespan > 0 ? (se - sb) / sim_blame.makespan : 0.0;
    sub.real_window_share =
        real_blame.makespan > 0 ? (re - rb) / real_blame.makespan : 0.0;
    sub.sim_idle_share = window_idle_share(sim_blame, s);
    sub.real_idle_share = window_idle_share(real_blame, s);
    d.subiterations.push_back(sub);

    const double rel_gap =
        std::abs(sub.real_window_share - sub.sim_window_share) /
        std::max(sub.sim_window_share, kWindowShareFloor);
    d.max_abs_rel_window_gap = std::max(d.max_abs_rel_window_gap, rel_gap);
    d.max_abs_idle_gap =
        std::max(d.max_abs_idle_gap,
                 std::abs(sub.real_idle_share - sub.sim_idle_share));
  }
  return d;
}

void print_divergence_report(std::ostream& os, const DivergenceReport& d) {
  os << "== sim vs reality ==\n"
     << "makespan: sim " << fmt_double(d.sim_makespan, 0) << " units x "
     << fmt_double(d.seconds_per_unit * 1e6, 3) << " us/unit = "
     << fmt_double(d.sim_makespan_seconds * 1e3, 2) << " ms predicted vs "
     << fmt_double(d.real_makespan_seconds * 1e3, 2) << " ms measured ("
     << (d.rel_makespan_gap >= 0 ? "+" : "")
     << fmt_percent(d.rel_makespan_gap) << ")\n"
     << "idle share: sim " << fmt_percent(d.sim_idle_share) << " vs real "
     << fmt_percent(d.real_idle_share) << " (gap "
     << (d.idle_share_gap >= 0 ? "+" : "")
     << fmt_percent(d.idle_share_gap) << ")\n";
  TablePrinter table("per-subiteration divergence (window = share of "
                     "makespan, idle = share of window capacity)");
  table.header({"subiteration", "sim window", "real window", "sim idle",
                "real idle", "idle gap"});
  for (const SubiterationDivergence& s : d.subiterations) {
    const double gap = s.real_idle_share - s.sim_idle_share;
    table.row({std::to_string(s.subiteration),
               fmt_percent(s.sim_window_share),
               fmt_percent(s.real_window_share),
               fmt_percent(s.sim_idle_share), fmt_percent(s.real_idle_share),
               std::string(gap >= 0 ? "+" : "") + fmt_percent(gap)});
  }
  table.print(os);
  os << "worst window-share drift: " << fmt_percent(d.max_abs_rel_window_gap)
     << " (relative)   worst idle-share drift: "
     << fmt_percent(d.max_abs_idle_gap) << " (absolute)\n";
}

void publish_divergence_metrics(const DivergenceReport& d) {
  obs::gauge("divergence.makespan.sim_units").set(d.sim_makespan);
  obs::gauge("divergence.makespan.sim_seconds").set(d.sim_makespan_seconds);
  obs::gauge("divergence.makespan.real_seconds").set(d.real_makespan_seconds);
  obs::gauge("divergence.makespan.rel_gap").set(d.rel_makespan_gap);
  obs::gauge("divergence.makespan.abs_rel_gap")
      .set(std::abs(d.rel_makespan_gap));
  obs::gauge("divergence.seconds_per_unit").set(d.seconds_per_unit);
  obs::gauge("divergence.idle_share.sim").set(d.sim_idle_share);
  obs::gauge("divergence.idle_share.real").set(d.real_idle_share);
  obs::gauge("divergence.idle_share.gap").set(d.idle_share_gap);
  obs::gauge("divergence.idle_share.abs_gap").set(std::abs(d.idle_share_gap));
  obs::gauge("divergence.subiteration.max_abs_rel_window_gap")
      .set(d.max_abs_rel_window_gap);
  obs::gauge("divergence.subiteration.max_abs_idle_gap")
      .set(d.max_abs_idle_gap);
}

}  // namespace tamp::sim
