#include "sim/simulate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace tamp::sim {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::eager_fifo: return "eager_fifo";
    case Policy::eager_lifo: return "eager_lifo";
    case Policy::critical_path: return "critical_path";
    case Policy::random_order: return "random";
  }
  return "?";
}

Policy parse_policy(const std::string& name) {
  if (name == "eager_fifo" || name == "eager") return Policy::eager_fifo;
  if (name == "eager_lifo" || name == "lifo") return Policy::eager_lifo;
  if (name == "critical_path" || name == "cp") return Policy::critical_path;
  if (name == "random" || name == "random_order") return Policy::random_order;
  throw precondition_error("unknown scheduling policy: " + name);
}

double SimResult::occupancy() const {
  if (makespan <= 0) return 0.0;
  simtime_t busy = 0;
  double capacity = 0;
  for (part_t p = 0; p < num_processes; ++p) {
    busy += busy_per_process[static_cast<std::size_t>(p)];
    capacity += static_cast<double>(workers_used[static_cast<std::size_t>(p)]) *
                makespan;
  }
  return capacity > 0 ? busy / capacity : 0.0;
}

double SimResult::idle_fraction(part_t p) const {
  TAMP_EXPECTS(p >= 0 && p < num_processes, "process index out of range");
  const double capacity =
      static_cast<double>(workers_used[static_cast<std::size_t>(p)]) * makespan;
  if (capacity <= 0) return 0.0;
  return 1.0 - busy_per_process[static_cast<std::size_t>(p)] / capacity;
}

GanttTrace SimResult::gantt(const taskgraph::TaskGraph& graph, bool per_worker,
                            const std::string& title) const {
  GanttTrace trace;
  trace.title = title;
  trace.makespan = makespan;

  if (per_worker) {
    // Row layout: workers grouped by process.
    std::vector<int> row_base(static_cast<std::size_t>(num_processes) + 1, 0);
    for (part_t p = 0; p < num_processes; ++p)
      row_base[static_cast<std::size_t>(p) + 1] =
          row_base[static_cast<std::size_t>(p)] +
          workers_used[static_cast<std::size_t>(p)];
    trace.resource_names.resize(static_cast<std::size_t>(row_base.back()));
    for (part_t p = 0; p < num_processes; ++p)
      for (int w = 0; w < workers_used[static_cast<std::size_t>(p)]; ++w)
        trace.resource_names[static_cast<std::size_t>(
            row_base[static_cast<std::size_t>(p)] + w)] =
            "p" + std::to_string(p) + ".w" + std::to_string(w);
    for (index_t t = 0; t < graph.num_tasks(); ++t) {
      const TaskTiming& tt = timing[static_cast<std::size_t>(t)];
      GanttSpan span;
      span.resource = row_base[static_cast<std::size_t>(tt.process)] + tt.worker;
      span.start = tt.start;
      span.end = tt.end;
      span.category = static_cast<int>(graph.task(t).subiteration);
      span.label = graph.task(t).label();
      trace.spans.push_back(span);
    }
    return trace;
  }

  // Aggregated per-process rows: merge each process's busy intervals (a
  // process is "active" when at least one worker is).
  trace.resource_names.resize(static_cast<std::size_t>(num_processes));
  for (part_t p = 0; p < num_processes; ++p)
    trace.resource_names[static_cast<std::size_t>(p)] =
        "proc" + std::to_string(p);
  // Collect spans per process sorted by start, then merge-and-emit with
  // the dominant subiteration as the colour.
  std::vector<std::vector<index_t>> by_proc(
      static_cast<std::size_t>(num_processes));
  for (index_t t = 0; t < graph.num_tasks(); ++t)
    by_proc[static_cast<std::size_t>(timing[static_cast<std::size_t>(t)].process)]
        .push_back(t);
  for (part_t p = 0; p < num_processes; ++p) {
    auto& list = by_proc[static_cast<std::size_t>(p)];
    std::sort(list.begin(), list.end(), [&](index_t a, index_t b) {
      return timing[static_cast<std::size_t>(a)].start <
             timing[static_cast<std::size_t>(b)].start;
    });
    simtime_t cur_start = 0, cur_end = -1;
    int cur_cat = 0;
    for (const index_t t : list) {
      const TaskTiming& tt = timing[static_cast<std::size_t>(t)];
      if (tt.start > cur_end) {  // gap → flush
        if (cur_end > cur_start)
          trace.spans.push_back(
              {p, cur_start, cur_end, cur_cat, std::string{}});
        cur_start = tt.start;
        cur_end = tt.end;
        cur_cat = static_cast<int>(graph.task(t).subiteration);
      } else {
        cur_end = std::max(cur_end, tt.end);
      }
    }
    if (cur_end > cur_start)
      trace.spans.push_back({p, cur_start, cur_end, cur_cat, std::string{}});
  }
  return trace;
}

namespace {

/// Ready-task ordering key per policy (higher = scheduled first).
struct ReadyEntry {
  double priority;
  std::uint64_t sequence;  // tie-break: FIFO on insertion
  index_t task;

  bool operator<(const ReadyEntry& other) const {
    // std::priority_queue is a max-heap; earlier sequence wins ties.
    if (priority != other.priority) return priority < other.priority;
    return sequence > other.sequence;
  }
};

/// Completion / future-readiness events.
struct Event {
  simtime_t time;
  int kind;  // 0 = task completion, 1 = task becomes ready (comm delay)
  index_t task;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    return task > other.task;
  }
};

}  // namespace

SimResult simulate(const taskgraph::TaskGraph& graph,
                   const std::vector<part_t>& domain_to_process,
                   const SimOptions& opts) {
  const index_t n = graph.num_tasks();
  const part_t nproc = opts.cluster.num_processes;
  TAMP_EXPECTS(nproc >= 1, "need at least one process");
  TAMP_TRACE_SCOPE("sim/simulate");

  // Pin tasks to processes.
  std::vector<part_t> process_of(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    const part_t d = graph.task(t).domain;
    TAMP_EXPECTS(static_cast<std::size_t>(d) < domain_to_process.size(),
                 "task domain outside process map");
    const part_t p = domain_to_process[static_cast<std::size_t>(d)];
    TAMP_EXPECTS(p >= 0 && p < nproc, "process id out of range");
    process_of[static_cast<std::size_t>(t)] = p;
  }

  // Priorities.
  std::vector<double> priority(static_cast<std::size_t>(n), 0.0);
  Rng rng(opts.seed);
  switch (opts.policy) {
    case Policy::eager_fifo:
      break;  // all zero: FIFO by sequence
    case Policy::eager_lifo:
      // handled via sequence sign below (later = higher priority).
      break;
    case Policy::critical_path: {
      // Upward rank: cost + max over successors.
      const auto order = graph.topological_order();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const index_t t = *it;
        double rank = 0.0;
        for (const index_t s : graph.successors(t))
          rank = std::max(rank, priority[static_cast<std::size_t>(s)]);
        priority[static_cast<std::size_t>(t)] = rank + graph.task(t).cost;
      }
      break;
    }
    case Policy::random_order:
      for (index_t t = 0; t < n; ++t)
        priority[static_cast<std::size_t>(t)] = rng.uniform();
      break;
  }

  // Per-process scheduling state.
  std::vector<std::priority_queue<ReadyEntry>> ready(
      static_cast<std::size_t>(nproc));
  // Free worker ids, smallest first (stable Gantt rows); `spawned` tracks
  // how many workers exist so unbounded mode can grow on demand.
  std::vector<std::set<int>> free_workers(static_cast<std::size_t>(nproc));
  std::vector<int> spawned(static_cast<std::size_t>(nproc), 0);
  if (!opts.cluster.unbounded()) {
    for (part_t p = 0; p < nproc; ++p) {
      for (int w = 0; w < opts.cluster.workers_per_process; ++w)
        free_workers[static_cast<std::size_t>(p)].insert(w);
      spawned[static_cast<std::size_t>(p)] = opts.cluster.workers_per_process;
    }
  }

  std::vector<index_t> pending(static_cast<std::size_t>(n));
  std::vector<simtime_t> ready_time(static_cast<std::size_t>(n), 0.0);
  std::vector<int> worker_of(static_cast<std::size_t>(n), -1);

  SimResult result;
  result.num_processes = nproc;
  result.timing.assign(static_cast<std::size_t>(n), TaskTiming{});
  result.busy_per_process.assign(static_cast<std::size_t>(nproc), 0.0);
  std::vector<int> peak_workers(static_cast<std::size_t>(nproc), 0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t sequence = 0;

  auto enqueue_ready = [&](index_t t, simtime_t when, simtime_t now) {
    if (when > now) {
      events.push({when, 1, t});
      return;
    }
    const part_t p = process_of[static_cast<std::size_t>(t)];
    double prio = priority[static_cast<std::size_t>(t)];
    if (opts.policy == Policy::eager_lifo)
      prio = static_cast<double>(sequence);
    ready[static_cast<std::size_t>(p)].push({prio, sequence++, t});
  };

  auto dispatch = [&](part_t p, simtime_t now) {
    auto& rq = ready[static_cast<std::size_t>(p)];
    auto& fw = free_workers[static_cast<std::size_t>(p)];
    while (!rq.empty()) {
      int worker = -1;
      if (opts.cluster.unbounded()) {
        if (fw.empty()) {
          worker = spawned[static_cast<std::size_t>(p)]++;
        } else {
          worker = *fw.begin();
          fw.erase(fw.begin());
        }
      } else {
        if (fw.empty()) break;
        worker = *fw.begin();
        fw.erase(fw.begin());
      }
      const index_t t = rq.top().task;
      rq.pop();
      const simtime_t duration = graph.task(t).cost + opts.task_overhead;
      const simtime_t end = now + duration;
      result.timing[static_cast<std::size_t>(t)] = {now, end, p, worker};
      worker_of[static_cast<std::size_t>(t)] = worker;
      peak_workers[static_cast<std::size_t>(p)] = std::max(
          peak_workers[static_cast<std::size_t>(p)], worker + 1);
      result.busy_per_process[static_cast<std::size_t>(p)] += duration;
      events.push({end, 0, t});
    }
  };

  index_t peak_depth = 0;
  auto sample_queue_depth = [&](part_t p, simtime_t when) {
    const auto depth =
        static_cast<index_t>(ready[static_cast<std::size_t>(p)].size());
    peak_depth = std::max(peak_depth, depth);
    result.queue_depth.push_back({when, p, depth});
  };

  // Seed initial ready tasks.
  for (index_t t = 0; t < n; ++t) {
    pending[static_cast<std::size_t>(t)] =
        static_cast<index_t>(graph.predecessors(t).size());
    if (pending[static_cast<std::size_t>(t)] == 0) enqueue_ready(t, 0.0, 0.0);
  }
  for (part_t p = 0; p < nproc; ++p) {
    dispatch(p, 0.0);
    sample_queue_depth(p, 0.0);
  }

  simtime_t now = 0.0;
  index_t completed = 0;
  std::vector<part_t> touched_procs;
  while (!events.empty()) {
    now = events.top().time;
    touched_procs.clear();
    // Drain all events at `now` before dispatching, so simultaneous
    // completions compete fairly for workers.
    while (!events.empty() && events.top().time == now) {
      const Event e = events.top();
      events.pop();
      if (e.kind == 0) {
        // Completion: release the worker and unlock successors.
        ++completed;
        const part_t p = process_of[static_cast<std::size_t>(e.task)];
        free_workers[static_cast<std::size_t>(p)].insert(
            worker_of[static_cast<std::size_t>(e.task)]);
        touched_procs.push_back(p);
        for (const index_t s : graph.successors(e.task)) {
          simtime_t arrival = now;
          if (opts.comm.enabled() &&
              process_of[static_cast<std::size_t>(s)] != p) {
            arrival += opts.comm.latency +
                       opts.comm.per_object *
                           static_cast<simtime_t>(graph.task(e.task).num_objects);
          }
          ready_time[static_cast<std::size_t>(s)] =
              std::max(ready_time[static_cast<std::size_t>(s)], arrival);
          if (--pending[static_cast<std::size_t>(s)] == 0) {
            enqueue_ready(s, ready_time[static_cast<std::size_t>(s)], now);
            touched_procs.push_back(process_of[static_cast<std::size_t>(s)]);
          }
        }
      } else {
        // Deferred readiness reached its time.
        const part_t p = process_of[static_cast<std::size_t>(e.task)];
        double prio = priority[static_cast<std::size_t>(e.task)];
        if (opts.policy == Policy::eager_lifo)
          prio = static_cast<double>(sequence);
        ready[static_cast<std::size_t>(p)].push({prio, sequence++, e.task});
        touched_procs.push_back(p);
      }
    }
    std::sort(touched_procs.begin(), touched_procs.end());
    touched_procs.erase(std::unique(touched_procs.begin(), touched_procs.end()),
                        touched_procs.end());
    for (const part_t p : touched_procs) {
      dispatch(p, now);
      sample_queue_depth(p, now);
    }
  }
  TAMP_ENSURE(completed == n, "simulation deadlocked (cycle or lost event)");

  result.makespan = now;
  result.workers_used.assign(static_cast<std::size_t>(nproc), 0);
  for (part_t p = 0; p < nproc; ++p)
    result.workers_used[static_cast<std::size_t>(p)] =
        opts.cluster.unbounded()
            ? std::max(peak_workers[static_cast<std::size_t>(p)], 1)
            : opts.cluster.workers_per_process;

  TAMP_METRIC_GAUGE_SET("sim.ready_queue.peak_depth", peak_depth);
  static_cast<void>(peak_depth);
#if defined(TAMP_TRACING_ENABLED)
  // Per-subiteration work and occupancy (the paper's Fig 6 diagnostic):
  // occupancy of subiteration s = its total work over the busy window
  // [min start, max end] of its tasks times the configured capacity.
  {
    index_t nsub = 0;
    for (index_t t = 0; t < n; ++t)
      nsub = std::max(nsub, graph.task(t).subiteration + 1);
    std::vector<simtime_t> work(static_cast<std::size_t>(nsub), 0.0);
    std::vector<simtime_t> first(static_cast<std::size_t>(nsub),
                                 std::numeric_limits<simtime_t>::max());
    std::vector<simtime_t> last(static_cast<std::size_t>(nsub), 0.0);
    for (index_t t = 0; t < n; ++t) {
      const auto s = static_cast<std::size_t>(graph.task(t).subiteration);
      const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
      work[s] += tt.end - tt.start;
      first[s] = std::min(first[s], tt.start);
      last[s] = std::max(last[s], tt.end);
    }
    double capacity_per_time = 0.0;
    for (part_t p = 0; p < nproc; ++p)
      capacity_per_time +=
          static_cast<double>(result.workers_used[static_cast<std::size_t>(p)]);
    obs::Histogram& work_hist = obs::histogram("sim.subiteration.work");
    obs::Histogram& occ_hist = obs::histogram("sim.subiteration.occupancy");
    for (std::size_t s = 0; s < static_cast<std::size_t>(nsub); ++s) {
      if (last[s] <= first[s]) continue;
      work_hist.record(work[s]);
      occ_hist.record(work[s] /
                      ((last[s] - first[s]) * capacity_per_time));
    }
  }
#endif
  return result;
}

}  // namespace tamp::sim
