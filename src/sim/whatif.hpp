// What-if engine: Coz-style virtual speedups over a measured execution.
//
// Question answered: "if we made task class C faster by factor k — say,
// by vectorizing its kernel — how much end-to-end makespan would that
// actually buy?" Naively, speeding a class that is off the critical path
// buys nothing; speeding one that gates every subiteration buys almost
// its full duration. The doctor's blame tables hint at this; the what-if
// replay *computes* it, before anyone writes SIMD.
//
// Replay contract (the part tests pin down):
//
//   The measured schedule is replayed as a list schedule that preserves
//   the runtime's realized decisions — each task keeps its measured
//   (process, worker) placement and its measured position in that
//   worker's execution order — while durations are rescaled per class.
//   A task starts at its gate (max of graph-predecessor ends and the
//   previous task's end on its worker) plus its *measured slack* (the
//   gap between its measured start and its measured gate: dequeue
//   latency, cv wakeup, scheduling jitter). Preserving slack keeps the
//   replay honest about runtime overheads the idealized simulator does
//   not model.
//
//   Bit-exactness at k = 1: a task whose scale is exactly 1.0 and whose
//   gate tasks all reproduced their measured times copies its measured
//   start/end verbatim instead of re-deriving them arithmetically (gate
//   + slack re-association can drift by an ulp). By induction, the
//   all-ones replay reproduces every timestamp — and therefore the
//   makespan — bit-exactly. This is the gated self-consistency test.
//
//   Monotonicity: every arithmetic in the replay (max, +, × by k) is
//   weakly monotone, so shrinking k can never grow the predicted
//   makespan.
//
// The predicted makespan is max task end over the replay; the measured
// baseline it is compared against is the same quantity over the measured
// spans (not wall_seconds, which includes post-task join time no speedup
// can touch).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "runtime/runtime.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::sim {

struct WhatIfOptions {
  /// Virtual speedup factors applied to one class at a time; k = 0.9
  /// means "this class's tasks take 90% of their measured time".
  std::vector<double> factors = {0.9, 0.75, 0.5};
};

/// Replay the measured schedule with per-class duration scale factors.
/// `scale_by_class` is indexed by TaskClass::id(); classes beyond its
/// size (or the empty span) scale by 1.0. Returns the predicted
/// makespan in seconds. Throws precondition_error when the report does
/// not match the graph.
[[nodiscard]] double replay_scaled(const taskgraph::TaskGraph& graph,
                                   const runtime::ExecutionReport& report,
                                   std::span<const double> scale_by_class);

/// One (class, k) prediction.
struct WhatIfEntry {
  double factor = 1.0;
  double predicted_makespan = 0;  ///< seconds
  double delta_seconds = 0;       ///< baseline − predicted (savings)
  double rel_delta = 0;           ///< delta / baseline
};

/// All predictions for one class, plus its ranking key.
struct WhatIfClassRow {
  taskgraph::TaskClass cls;
  index_t tasks = 0;
  double class_seconds = 0;  ///< Σ measured durations of the class
  std::vector<WhatIfEntry> entries;  ///< parallel to WhatIfReport::factors
  /// Savings at the most aggressive factor — the rank key: "if you could
  /// halve any one class, halve this one".
  double best_delta_seconds = 0;
};

struct WhatIfReport {
  double measured_makespan = 0;  ///< max measured span end
  double baseline_makespan = 0;  ///< all-ones replay; == measured bit-exactly
  std::vector<double> factors;
  std::vector<WhatIfClassRow> rows;  ///< ranked by best_delta_seconds, desc
};

/// Run the full sweep: one replay per (class present in graph, factor).
[[nodiscard]] WhatIfReport what_if(const taskgraph::TaskGraph& graph,
                                   const runtime::ExecutionReport& report,
                                   const WhatIfOptions& options = {});

/// Ranked "optimization leverage" table (flusim --execute --what-if).
void print_whatif_report(std::ostream& os, const WhatIfReport& report);

/// Publish whatif.* gauges for tamp-report gating:
///   whatif.baseline_makespan_seconds / whatif.measured_makespan_seconds
///   whatif.self_check_error            (|baseline − measured|, must be 0)
///   whatif.classes / whatif.factors
///   whatif.best.delta_seconds / whatif.best.rel_delta  (top-ranked row)
///   whatif.class.<label>.k<pct>.rel_delta              (per class × factor)
void publish_whatif_metrics(const WhatIfReport& report);

}  // namespace tamp::sim
