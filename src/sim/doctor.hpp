// Schedule doctor: automatic diagnosis of a realized schedule.
//
// The paper reads its central claims off Gantt charts — SC_OC shows
// "continuous blocks of inactivity" because whole subiterations starve
// most processes, MC_TL keeps every domain active in every subiteration.
// This module turns that visual analysis into a report:
//
//   * Realized critical path — the chain of tasks whose starts were
//     actually gated (by a predecessor finishing or a worker freeing)
//     that ends at the makespan, with its time aggregated by
//     subiteration, temporal level, domain and process. The *static*
//     critical path (taskgraph::critical_path) bounds any schedule; the
//     realized one explains the schedule you got.
//
//   * Idle blame — every contiguous idle interval of every worker is
//     attributed to one of three causes:
//       dependency_wait — the process still has work in the currently
//         executing subiteration, but it is blocked (remote predecessor
//         not finished, or fewer runnable tasks than workers);
//       starvation — the process has no task of the current
//         subiteration at all: the paper's level-imbalance signature;
//       tail_imbalance — the process already finished everything and
//         waits for the makespan.
//     Blame is accounted per (process × subiteration), in worker-time,
//     so the shares of one process sum exactly to its idle_fraction().
//
// Reports can be rendered as text (flusim --doctor), CSV, an SVG
// heatmap, and tamp-metrics-v1 gauges for tamp-report / CI gating.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/analysis.hpp"
#include "sim/simulate.hpp"

namespace tamp::sim {

/// What gated the start of a realized-critical-path step.
enum class StartGate : std::uint8_t {
  source,      ///< started at t = 0, nothing before it
  dependency,  ///< start coincides with the latest predecessor's arrival
  worker,      ///< start coincides with a worker of its process freeing
};
[[nodiscard]] const char* to_string(StartGate g);

/// One link of the realized critical path, in execution order.
struct CriticalStep {
  index_t task = invalid_index;
  StartGate gate = StartGate::source;
  /// The task whose completion opened this one's start: the gating
  /// predecessor (dependency) or the task that freed the worker
  /// (worker); invalid_index for source steps.
  index_t gated_by = invalid_index;
  simtime_t duration = 0;
};

/// The realized critical path and where its time lives.
struct CriticalPathReport {
  std::vector<CriticalStep> steps;   ///< schedule start → makespan
  simtime_t task_time = 0;           ///< Σ step durations (== makespan)
  simtime_t static_lower_bound = 0;  ///< graph.critical_path()

  // Chain task time aggregated along the paper's analysis axes.
  std::vector<simtime_t> by_subiteration;
  std::vector<simtime_t> by_level;   ///< phase τ
  std::vector<simtime_t> by_domain;
  std::vector<simtime_t> by_process;
  simtime_t gated_by_dependency = 0; ///< Σ durations of dependency-gated steps
  simtime_t gated_by_worker = 0;     ///< Σ durations of worker-gated steps
  index_t cross_process_handoffs = 0;///< dependency gates crossing processes
};

/// Recover the chain of tasks that determined the makespan. Pass the
/// simulation's CommModel so cross-process dependency arrivals match
/// what the scheduler saw.
[[nodiscard]] CriticalPathReport realized_critical_path(
    const taskgraph::TaskGraph& graph, const SimResult& result,
    const CommModel& comm = {});

/// Idle-interval blame classes.
enum class IdleCause : std::uint8_t {
  dependency_wait = 0,
  starvation = 1,
  tail_imbalance = 2,
};
inline constexpr int kNumIdleCauses = 3;
[[nodiscard]] const char* to_string(IdleCause c);

/// Worker idle time attributed per (process × subiteration × cause).
struct IdleBlameReport {
  part_t num_processes = 0;
  index_t num_subiterations = 0;
  simtime_t makespan = 0;
  std::vector<int> workers;      ///< per process (capacity divisor)
  /// blame[(p · nsub + s) · kNumIdleCauses + cause] in worker-time.
  std::vector<simtime_t> blame;
  /// Boundaries of the global subiteration windows: subiteration s was
  /// "current" during [window_end[s-1], window_end[s]) (0-based start).
  std::vector<simtime_t> window_end;

  [[nodiscard]] simtime_t at(part_t p, index_t s, IdleCause c) const;
  /// Σ over subiterations, worker-time.
  [[nodiscard]] simtime_t total(part_t p, IdleCause c) const;
  /// total() as a fraction of p's capacity (workers · makespan); the
  /// three shares of a process sum to its idle_fraction().
  [[nodiscard]] double share(part_t p, IdleCause c) const;
  /// Cause share of the whole cluster's capacity.
  [[nodiscard]] double overall_share(IdleCause c) const;
};

/// Classify every worker idle interval of the schedule.
[[nodiscard]] IdleBlameReport idle_blame(const taskgraph::TaskGraph& graph,
                                         const SimResult& result);

/// Everything the doctor knows about one run.
struct DoctorReport {
  simtime_t makespan = 0;
  double occupancy = 0;
  CriticalPathReport critical;
  IdleBlameReport blame;
  std::vector<SubiterationActivity> activity;  ///< p × nsub
};

/// Run the full diagnosis.
[[nodiscard]] DoctorReport diagnose(const taskgraph::TaskGraph& graph,
                                    const SimResult& result,
                                    const CommModel& comm = {});

/// Human-readable report (tables + headline numbers).
void print_doctor_report(std::ostream& os, const taskgraph::TaskGraph& graph,
                         const DoctorReport& report);

/// Per-(process × subiteration) blame breakdown as CSV text.
[[nodiscard]] std::string doctor_blame_csv(const DoctorReport& report);

/// SVG heatmap: rows = processes, columns = subiteration windows, cell
/// shade = idle share within that window, hue = dominant blame cause.
void write_doctor_heatmap_svg(const DoctorReport& report,
                              const std::string& path);

/// Publish headline numbers as tamp-metrics-v1 gauges/histograms under
/// `prefix` ("doctor.*" by default; flusim --execute uses
/// "doctor.measured." so simulated and measured diagnoses coexist in one
/// snapshot), ready for obs::metrics_to_json and tamp-report gating.
void publish_doctor_metrics(const taskgraph::TaskGraph& graph,
                            const DoctorReport& report,
                            const std::string& prefix = "doctor.");

/// Stage-overlap accounting of the asynchronous iteration pipeline
/// (core/pipeline): how much of the prep work (evolve → incremental
/// repartition → task-graph build) was hidden under the previous
/// iteration's solve, and how much stayed exposed on the critical path —
/// the doctor's blame category for pipeline stalls. Wall-clock seconds
/// throughout; built by the pipeline driver from its per-iteration stage
/// timestamps.
struct StageOverlapReport {
  int iterations = 0;            ///< solve iterations executed
  bool overlapped = false;       ///< pipeline mode (overlap vs sync)
  double wall_seconds = 0;       ///< whole pipeline run
  double prep_seconds = 0;       ///< Σ all prep stages (snapshot 0 incl.)
  double solve_seconds = 0;      ///< Σ solve stages
  /// Prep that ran while a solve had the critical path covered —
  /// Σ_i |[prep_start(i), prep_end(i)] ∩ [solve_start(i−1),
  /// solve_end(i−1)]|. Structurally 0 in sync mode.
  double hidden_seconds = 0;
  /// Prep with a concurrent solve available to hide under (everything
  /// except snapshot 0's, which no solve precedes) — the denominator of
  /// overlap_efficiency().
  double hideable_prep_seconds = 0;

  /// Prep seconds left on the critical path ("prep-exposed" blame).
  [[nodiscard]] double exposed_seconds() const {
    return prep_seconds - hidden_seconds;
  }
  /// Fraction of hideable prep actually hidden, in [0, 1]; 0 when there
  /// was nothing to hide.
  [[nodiscard]] double overlap_efficiency() const {
    return hideable_prep_seconds > 0 ? hidden_seconds / hideable_prep_seconds
                                     : 0.0;
  }
};

/// Human-readable stage-overlap section (pipeline table footer).
void print_stage_overlap(std::ostream& os, const StageOverlapReport& report);

/// Publish the overlap gauges under `prefix`:
///   pipeline.overlap_efficiency / prep_hidden_seconds /
///   prep_exposed_seconds / prep_seconds / solve_seconds / wall_seconds /
///   iterations
void publish_stage_overlap_metrics(const StageOverlapReport& report,
                                   const std::string& prefix = "pipeline.");

}  // namespace tamp::sim
