// Chrome trace-event export (chrome://tracing, Perfetto, Speedscope).
//
// Serialises a simulated schedule or a real runtime execution into the
// Trace Event JSON format: one "complete" (ph:"X") event per task, with
// processes mapped to trace pids and workers to tids, coloured/filterable
// by subiteration and phase through event args. This is the practical way
// to eyeball large schedules that SVG Gantt charts cannot hold.
#pragma once

#include <string>

#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"

namespace tamp::sim {

/// Serialise a simulation result (times in abstract work units mapped to
/// microseconds).
std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const SimResult& result);

/// Serialise a real runtime execution (times in seconds mapped to
/// microseconds).
std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const runtime::ExecutionReport& report);

/// Write either serialisation to a file; throws runtime_failure on I/O
/// error.
void save_chrome_trace(const std::string& json, const std::string& path);

}  // namespace tamp::sim
