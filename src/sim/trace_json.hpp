// Chrome trace-event export (chrome://tracing, Perfetto, Speedscope).
//
// Serialises a simulated schedule or a real runtime execution into the
// Trace Event JSON format: one "complete" (ph:"X") event per task, with
// processes mapped to trace pids and workers to tids, coloured/filterable
// by subiteration and phase through event args. This is the practical way
// to eyeball large schedules that SVG Gantt charts cannot hold.
#pragma once

#include <string>

#include "runtime/runtime.hpp"
#include "sim/simulate.hpp"

namespace tamp::sim {

/// Serialise a simulation result (times in abstract work units mapped to
/// microseconds).
std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const SimResult& result);

/// Serialise a real runtime execution (times in seconds mapped to
/// microseconds).
std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const runtime::ExecutionReport& report);

/// Serialise a simulation result together with the global TraceSession's
/// pipeline-phase spans (partition/coarsen, taskgraph/generate, …) into
/// one document: task spans keep their simulated-time pids, pipeline
/// wall-clock spans appear under obs::kPipelineTracePid.
std::string to_chrome_trace_merged(const taskgraph::TaskGraph& graph,
                                   const SimResult& result);

/// Merged measured trace: the execution's task spans plus — when the
/// report carries flight events — per-process counter tracks
/// (ready_queue depth at each dequeue, idle_workers from idle intervals,
/// cumulative/in-flight steals), plus the pipeline-phase spans under
/// obs::kPipelineTracePid. The counter tracks are what make starvation
/// visible: a ready_queue flatline at 0 under a rising idle_workers
/// curve is the level-imbalance signature, on real threads.
std::string to_chrome_trace_merged(const taskgraph::TaskGraph& graph,
                                   const runtime::ExecutionReport& report);

/// Write either serialisation to a file; throws runtime_failure on I/O
/// error.
void save_chrome_trace(const std::string& json, const std::string& path);

}  // namespace tamp::sim
