// Measured-execution adapter: lift a runtime::ExecutionReport into the
// simulator's result form so every FLUSIM analysis — the schedule doctor,
// Gantt rendering, Chrome traces — applies unchanged to *real* threaded
// runs, and quantify how far the simulator's prediction drifted from the
// measurement (the paper's Fig 5, FLUSEPA trace vs FLUSIM trace, as a
// number instead of two pictures to eyeball).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "sim/doctor.hpp"
#include "sim/simulate.hpp"

namespace tamp::sim {

/// Re-express a measured execution as a SimResult (times in seconds):
/// timing from the report's spans, busy_per_process summed from span
/// durations, makespan = wall_seconds, and — when the report carries
/// flight events — queue-depth samples reconstructed from task_dequeue
/// events. The result feeds diagnose()/gantt()/to_chrome_trace directly.
/// Throws precondition_error when the report is empty of span data.
[[nodiscard]] SimResult to_sim_result(const runtime::ExecutionReport& report);

/// Run the schedule doctor on a measured execution. Blame shares still
/// sum exactly to each process's idle fraction — the accounting is the
/// same window-sliced attribution the simulator gets.
[[nodiscard]] DoctorReport diagnose_measured(
    const taskgraph::TaskGraph& graph, const runtime::ExecutionReport& report);

/// Sim-vs-reality deltas for one subiteration window.
struct SubiterationDivergence {
  index_t subiteration = 0;
  /// Window duration as a fraction of the run's makespan.
  double sim_window_share = 0;
  double real_window_share = 0;
  /// Idle worker-time within the window / window capacity.
  double sim_idle_share = 0;
  double real_idle_share = 0;
};

/// Quantified simulator drift on one (graph, placement, cluster) triple.
/// The simulator's clock counts abstract work units; the measured run
/// counts seconds, so makespans are compared after scaling the simulated
/// one by `seconds_per_unit`.
struct DivergenceReport {
  double sim_makespan = 0;           ///< work units
  double real_makespan_seconds = 0;
  double seconds_per_unit = 0;       ///< calibration used
  double sim_makespan_seconds = 0;   ///< sim_makespan · seconds_per_unit
  /// (real − sim_scaled) / sim_scaled: positive = reality slower than
  /// the prediction.
  double rel_makespan_gap = 0;
  double sim_idle_share = 0;         ///< 1 − occupancy
  double real_idle_share = 0;
  double idle_share_gap = 0;         ///< real − sim (absolute)
  std::vector<SubiterationDivergence> subiterations;
  double max_abs_rel_window_gap = 0; ///< worst |real−sim|/max(sim,ε) window
  double max_abs_idle_gap = 0;       ///< worst |real−sim| idle share
};

/// Compare a simulated schedule against a measured execution of the same
/// graph/placement. `seconds_per_unit` converts simulated work units to
/// seconds; pass <= 0 to auto-calibrate from the data (Σ measured task
/// seconds / Σ simulated task units), which isolates *scheduling* drift
/// from cost-model miscalibration. Throws precondition_error when the two
/// results describe different task counts.
[[nodiscard]] DivergenceReport compare_sim_to_measured(
    const taskgraph::TaskGraph& graph, const SimResult& sim,
    const runtime::ExecutionReport& real, double seconds_per_unit = 0);

/// Human-readable divergence table (flusim --execute, fig5 bench).
void print_divergence_report(std::ostream& os, const DivergenceReport& d);

/// Publish the report as tamp-metrics-v1 gauges ("divergence.*") for
/// tamp-report gating: makespans, rel_gap/abs_rel_gap, idle shares and
/// gaps, and the worst per-subiteration window/idle deltas.
void publish_divergence_metrics(const DivergenceReport& d);

}  // namespace tamp::sim
