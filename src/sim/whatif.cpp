#include "sim/whatif.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <tuple>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace tamp::sim {

namespace {

/// Replay order: a topological order of the union of graph edges and
/// per-worker chain edges. Worker chains are sorted by (start, end,
/// graph-topological position): the third key breaks bitwise-identical
/// timestamp ties (zero-duration tasks) in graph order, so a chain edge
/// can never point against a graph edge and the union stays acyclic.
struct ReplayOrder {
  std::vector<index_t> order;        ///< topological over the union
  std::vector<index_t> worker_prev;  ///< chain predecessor or invalid_index
};

ReplayOrder build_replay_order(const taskgraph::TaskGraph& graph,
                               const runtime::ExecutionReport& report) {
  const index_t n = graph.num_tasks();
  std::vector<index_t> topo_pos(static_cast<std::size_t>(n));
  {
    const std::vector<index_t> topo = graph.topological_order();
    for (index_t i = 0; i < n; ++i)
      topo_pos[static_cast<std::size_t>(topo[static_cast<std::size_t>(i)])] =
          i;
  }

  const std::size_t slots =
      static_cast<std::size_t>(report.num_processes) *
      static_cast<std::size_t>(report.workers_per_process);
  std::vector<std::vector<index_t>> chain(slots);
  for (index_t t = 0; t < n; ++t) {
    const runtime::ExecutionReport::Span& s =
        report.spans[static_cast<std::size_t>(t)];
    chain[static_cast<std::size_t>(s.process) *
              static_cast<std::size_t>(report.workers_per_process) +
          static_cast<std::size_t>(s.worker)]
        .push_back(t);
  }
  ReplayOrder out;
  out.worker_prev.assign(static_cast<std::size_t>(n), invalid_index);
  for (std::vector<index_t>& c : chain) {
    std::sort(c.begin(), c.end(), [&](index_t a, index_t b) {
      const auto& sa = report.spans[static_cast<std::size_t>(a)];
      const auto& sb = report.spans[static_cast<std::size_t>(b)];
      return std::make_tuple(sa.start, sa.end,
                             topo_pos[static_cast<std::size_t>(a)]) <
             std::make_tuple(sb.start, sb.end,
                             topo_pos[static_cast<std::size_t>(b)]);
    });
    for (std::size_t i = 1; i < c.size(); ++i)
      out.worker_prev[static_cast<std::size_t>(c[i])] = c[i - 1];
  }

  // Kahn over graph-pred edges plus the chain edge. A chain edge that
  // duplicates a graph edge is counted (and released) twice — harmless.
  std::vector<index_t> indegree(static_cast<std::size_t>(n), 0);
  for (index_t t = 0; t < n; ++t) {
    indegree[static_cast<std::size_t>(t)] =
        static_cast<index_t>(graph.predecessors(t).size()) +
        (out.worker_prev[static_cast<std::size_t>(t)] != invalid_index ? 1
                                                                       : 0);
  }
  std::vector<index_t> worker_next(static_cast<std::size_t>(n),
                                   invalid_index);
  for (index_t t = 0; t < n; ++t)
    if (out.worker_prev[static_cast<std::size_t>(t)] != invalid_index)
      worker_next[static_cast<std::size_t>(
          out.worker_prev[static_cast<std::size_t>(t)])] = t;

  std::vector<index_t> ready;
  for (index_t t = 0; t < n; ++t)
    if (indegree[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  out.order.reserve(static_cast<std::size_t>(n));
  auto release = [&](index_t s) {
    if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push_back(s);
  };
  while (!ready.empty()) {
    const index_t t = ready.back();
    ready.pop_back();
    out.order.push_back(t);
    for (const index_t s : graph.successors(t)) release(s);
    if (worker_next[static_cast<std::size_t>(t)] != invalid_index)
      release(worker_next[static_cast<std::size_t>(t)]);
  }
  TAMP_ENSURE(out.order.size() == static_cast<std::size_t>(n),
              "measured schedule inconsistent with the task graph");
  return out;
}

}  // namespace

double replay_scaled(const taskgraph::TaskGraph& graph,
                     const runtime::ExecutionReport& report,
                     std::span<const double> scale_by_class) {
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(
      report.spans.size() == static_cast<std::size_t>(n),
      "execution report does not match the task graph");
  TAMP_EXPECTS(report.num_processes > 0 && report.workers_per_process > 0,
               "execution report has no worker capacity");
  if (n == 0) return 0.0;
  const ReplayOrder replay = build_replay_order(graph, report);

  std::vector<double> new_end(static_cast<std::size_t>(n), 0.0);
  // exact[t]: t's replayed times are the measured ones, bit for bit.
  std::vector<char> exact(static_cast<std::size_t>(n), 0);
  double makespan = 0.0;
  for (const index_t t : replay.order) {
    const runtime::ExecutionReport::Span& s =
        report.spans[static_cast<std::size_t>(t)];
    const int cls = taskgraph::class_of(graph.task(t)).id();
    const double scale =
        static_cast<std::size_t>(cls) < scale_by_class.size()
            ? scale_by_class[static_cast<std::size_t>(cls)]
            : 1.0;

    const index_t prev = replay.worker_prev[static_cast<std::size_t>(t)];
    bool gates_exact = prev == invalid_index ||
                       exact[static_cast<std::size_t>(prev)] != 0;
    double gate = prev == invalid_index
                      ? 0.0
                      : new_end[static_cast<std::size_t>(prev)];
    double measured_gate =
        prev == invalid_index
            ? 0.0
            : report.spans[static_cast<std::size_t>(prev)].end;
    for (const index_t p : graph.predecessors(t)) {
      gates_exact = gates_exact && exact[static_cast<std::size_t>(p)] != 0;
      gate = std::max(gate, new_end[static_cast<std::size_t>(p)]);
      measured_gate =
          std::max(measured_gate,
                   report.spans[static_cast<std::size_t>(p)].end);
    }

    double end;
    if (scale == 1.0 && gates_exact) {
      // Verbatim copy: re-deriving start as gate + slack re-associates
      // the float arithmetic and can drift by an ulp even when every
      // input is bitwise identical.
      end = s.end;
      exact[static_cast<std::size_t>(t)] = 1;
    } else {
      const double slack = std::max(0.0, s.start - measured_gate);
      const double duration = (s.end - s.start) * scale;
      end = gate + slack + duration;
    }
    new_end[static_cast<std::size_t>(t)] = end;
    makespan = std::max(makespan, end);
  }
  return makespan;
}

WhatIfReport what_if(const taskgraph::TaskGraph& graph,
                     const runtime::ExecutionReport& report,
                     const WhatIfOptions& options) {
  TAMP_EXPECTS(!options.factors.empty(), "what-if needs at least one factor");
  for (const double k : options.factors)
    TAMP_EXPECTS(k > 0, "what-if factors must be positive");
  WhatIfReport out;
  out.factors = options.factors;
  for (const runtime::ExecutionReport::Span& s : report.spans)
    out.measured_makespan = std::max(out.measured_makespan, s.end);
  out.baseline_makespan = replay_scaled(graph, report, {});

  const std::vector<taskgraph::TaskClass> classes =
      taskgraph::task_classes(graph);
  int max_id = 0;
  for (const taskgraph::TaskClass& c : classes) max_id = std::max(max_id, c.id());
  std::vector<double> scale(static_cast<std::size_t>(max_id) + 1, 1.0);

  for (const taskgraph::TaskClass& cls : classes) {
    WhatIfClassRow row;
    row.cls = cls;
    for (index_t t = 0; t < graph.num_tasks(); ++t) {
      if (taskgraph::class_of(graph.task(t)) != cls) continue;
      const runtime::ExecutionReport::Span& s =
          report.spans[static_cast<std::size_t>(t)];
      row.tasks += 1;
      row.class_seconds += s.end - s.start;
    }
    for (const double k : options.factors) {
      scale[static_cast<std::size_t>(cls.id())] = k;
      WhatIfEntry entry;
      entry.factor = k;
      entry.predicted_makespan = replay_scaled(graph, report, scale);
      entry.delta_seconds = out.baseline_makespan - entry.predicted_makespan;
      entry.rel_delta = out.baseline_makespan > 0
                            ? entry.delta_seconds / out.baseline_makespan
                            : 0.0;
      row.best_delta_seconds =
          std::max(row.best_delta_seconds, entry.delta_seconds);
      row.entries.push_back(entry);
    }
    scale[static_cast<std::size_t>(cls.id())] = 1.0;
    out.rows.push_back(std::move(row));
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const WhatIfClassRow& a, const WhatIfClassRow& b) {
              return a.best_delta_seconds > b.best_delta_seconds ||
                     (a.best_delta_seconds == b.best_delta_seconds &&
                      a.cls.id() < b.cls.id());
            });
  return out;
}

void print_whatif_report(std::ostream& os, const WhatIfReport& report) {
  os << "== what-if: virtual speedup leverage ==\n"
     << "baseline makespan " << fmt_double(report.baseline_makespan * 1e3, 3)
     << " ms (replay self-check error "
     << std::abs(report.baseline_makespan - report.measured_makespan)
     << " s)\n";
  std::vector<std::string> head = {"rank", "class", "tasks", "class ms",
                                   "share"};
  for (const double k : report.factors)
    head.push_back("saved @ k=" + fmt_double(k, 2));
  TablePrinter table("predicted makespan savings if one class ran k x as "
                     "long (ranked by savings at the smallest k)");
  table.header(head);
  int rank = 1;
  for (const WhatIfClassRow& row : report.rows) {
    std::vector<std::string> cells = {
        std::to_string(rank++), row.cls.label(), std::to_string(row.tasks),
        fmt_double(row.class_seconds * 1e3, 3),
        report.baseline_makespan > 0
            ? fmt_percent(row.class_seconds / report.baseline_makespan)
            : "-"};
    for (const WhatIfEntry& e : row.entries)
      cells.push_back(fmt_double(e.delta_seconds * 1e3, 3) + " ms (" +
                      fmt_percent(e.rel_delta) + ")");
    table.row(cells);
  }
  table.print(os);
}

void publish_whatif_metrics(const WhatIfReport& report) {
  obs::gauge("whatif.baseline_makespan_seconds")
      .set(report.baseline_makespan);
  obs::gauge("whatif.measured_makespan_seconds")
      .set(report.measured_makespan);
  obs::gauge("whatif.self_check_error")
      .set(std::abs(report.baseline_makespan - report.measured_makespan));
  obs::gauge("whatif.classes").set(static_cast<double>(report.rows.size()));
  obs::gauge("whatif.factors").set(static_cast<double>(report.factors.size()));
  if (!report.rows.empty()) {
    obs::gauge("whatif.best.delta_seconds")
        .set(report.rows.front().best_delta_seconds);
    obs::gauge("whatif.best.rel_delta")
        .set(report.baseline_makespan > 0
                 ? report.rows.front().best_delta_seconds /
                       report.baseline_makespan
                 : 0.0);
  }
  for (const WhatIfClassRow& row : report.rows) {
    const std::string label =
        "t" + std::to_string(static_cast<int>(row.cls.level)) + "." +
        to_string(row.cls.type) + "." + to_string(row.cls.locality);
    for (const WhatIfEntry& e : row.entries) {
      const int pct = static_cast<int>(std::lround(e.factor * 100));
      obs::gauge("whatif.class." + label + ".k" + std::to_string(pct) +
                 ".rel_delta")
          .set(e.rel_delta);
    }
  }
}

}  // namespace tamp::sim
