#include "sim/analysis.hpp"

#include <algorithm>

namespace tamp::sim {

std::vector<SubiterationActivity> subiteration_activity(
    const taskgraph::TaskGraph& graph, const SimResult& result) {
  index_t nsub = 0;
  for (const taskgraph::Task& t : graph.tasks())
    nsub = std::max(nsub, t.subiteration + 1);
  std::vector<SubiterationActivity> activity(
      static_cast<std::size_t>(result.num_processes) *
      static_cast<std::size_t>(nsub));
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    SubiterationActivity& a =
        activity[static_cast<std::size_t>(tt.process) * nsub +
                 static_cast<std::size_t>(graph.task(t).subiteration)];
    a.first_start = std::min(a.first_start, tt.start);
    a.last_end = std::max(a.last_end, tt.end);
    a.busy += tt.end - tt.start;
    ++a.tasks;
  }
  return activity;
}

double ConcurrencyProfile::average(simtime_t makespan) const {
  if (makespan <= 0 || breaks.empty()) return 0.0;
  double area = 0.0;
  for (std::size_t i = 0; i < breaks.size(); ++i) {
    const simtime_t end = i + 1 < breaks.size() ? breaks[i + 1] : makespan;
    area += static_cast<double>(values[i]) * (end - breaks[i]);
  }
  return area / makespan;
}

index_t ConcurrencyProfile::peak() const {
  index_t p = 0;
  for (const index_t v : values) p = std::max(p, v);
  return p;
}

double ConcurrencyProfile::fraction_below(index_t threshold,
                                          simtime_t makespan) const {
  if (makespan <= 0 || breaks.empty()) return 0.0;
  simtime_t below = 0;
  for (std::size_t i = 0; i < breaks.size(); ++i) {
    const simtime_t end = i + 1 < breaks.size() ? breaks[i + 1] : makespan;
    if (values[i] < threshold) below += end - breaks[i];
  }
  return below / makespan;
}

ConcurrencyProfile concurrency_profile(const SimResult& result) {
  // Sweep-line over start (+1) / end (−1) events.
  std::vector<std::pair<simtime_t, int>> events;
  events.reserve(2 * result.timing.size());
  for (const TaskTiming& tt : result.timing) {
    events.emplace_back(tt.start, +1);
    events.emplace_back(tt.end, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              // Ends before starts at equal times, so touching tasks do
              // not double-count.
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  ConcurrencyProfile profile;
  index_t current = 0;
  for (std::size_t i = 0; i < events.size();) {
    const simtime_t t = events[i].first;
    while (i < events.size() && events[i].first == t) {
      current += events[i].second;
      ++i;
    }
    if (!profile.breaks.empty() && profile.breaks.back() == t) {
      profile.values.back() = current;
    } else {
      profile.breaks.push_back(t);
      profile.values.push_back(current);
    }
  }
  if (profile.breaks.empty() || profile.breaks.front() > 0) {
    profile.breaks.insert(profile.breaks.begin(), 0);
    profile.values.insert(profile.values.begin(), 0);
  }
  return profile;
}

IdleBlocks idle_blocks(const SimResult& result, part_t process) {
  TAMP_EXPECTS(process >= 0 && process < result.num_processes,
               "process index out of range");
  // Merge the process's busy intervals, then measure the gaps.
  std::vector<std::pair<simtime_t, simtime_t>> spans;
  for (const TaskTiming& tt : result.timing)
    if (tt.process == process) spans.emplace_back(tt.start, tt.end);
  std::sort(spans.begin(), spans.end());

  IdleBlocks blocks;
  simtime_t cursor = 0;
  for (const auto& [start, end] : spans) {
    if (start > cursor) {
      ++blocks.count;
      blocks.total += start - cursor;
      blocks.longest = std::max(blocks.longest, start - cursor);
    }
    cursor = std::max(cursor, end);
  }
  if (cursor < result.makespan) {
    ++blocks.count;
    blocks.total += result.makespan - cursor;
    blocks.longest = std::max(blocks.longest, result.makespan - cursor);
  }
  return blocks;
}

}  // namespace tamp::sim
