#include "sim/doctor.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "support/svg.hpp"
#include "support/table.hpp"

namespace tamp::sim {

const char* to_string(StartGate g) {
  switch (g) {
    case StartGate::source: return "source";
    case StartGate::dependency: return "dependency";
    case StartGate::worker: return "worker";
  }
  return "?";
}

const char* to_string(IdleCause c) {
  switch (c) {
    case IdleCause::dependency_wait: return "dependency_wait";
    case IdleCause::starvation: return "starvation";
    case IdleCause::tail_imbalance: return "tail_imbalance";
  }
  return "?";
}

namespace {

simtime_t time_epsilon(simtime_t makespan) {
  return 1e-9 * (std::abs(makespan) + 1.0);
}

/// Arrival time of `pred`'s output at `succ` (comm delay on crossing
/// edges, mirroring the simulator's model).
simtime_t arrival_time(const taskgraph::TaskGraph& graph,
                       const SimResult& result, const CommModel& comm,
                       index_t pred, index_t succ) {
  const TaskTiming& pt = result.timing[static_cast<std::size_t>(pred)];
  const TaskTiming& st = result.timing[static_cast<std::size_t>(succ)];
  simtime_t t = pt.end;
  if (comm.enabled() && pt.process != st.process)
    t += comm.latency +
         comm.per_object *
             static_cast<simtime_t>(graph.task(pred).num_objects);
  return t;
}

}  // namespace

CriticalPathReport realized_critical_path(const taskgraph::TaskGraph& graph,
                                          const SimResult& result,
                                          const CommModel& comm) {
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(result.timing.size() == static_cast<std::size_t>(n),
               "simulation result does not match the task graph");
  CriticalPathReport report;
  report.static_lower_bound = graph.critical_path();
  if (n == 0) return report;
  const simtime_t eps = time_epsilon(result.makespan);

  // Per-process (end, task) lists for worker-gate lookups.
  std::vector<std::vector<std::pair<simtime_t, index_t>>> ends_by_proc(
      static_cast<std::size_t>(result.num_processes));
  for (index_t t = 0; t < n; ++t)
    ends_by_proc[static_cast<std::size_t>(
                     result.timing[static_cast<std::size_t>(t)].process)]
        .emplace_back(result.timing[static_cast<std::size_t>(t)].end, t);
  for (auto& list : ends_by_proc) std::sort(list.begin(), list.end());

  // Terminal task: latest end (ties broken by id for determinism).
  index_t current = 0;
  for (index_t t = 1; t < n; ++t)
    if (result.timing[static_cast<std::size_t>(t)].end >
        result.timing[static_cast<std::size_t>(current)].end)
      current = t;

  std::vector<CriticalStep> chain;
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  while (current != invalid_index && !visited[static_cast<std::size_t>(current)]) {
    visited[static_cast<std::size_t>(current)] = true;
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(current)];
    CriticalStep step;
    step.task = current;
    step.duration = tt.end - tt.start;

    // Latest-arriving predecessor.
    index_t best_pred = invalid_index;
    simtime_t best_arrival = -std::numeric_limits<simtime_t>::infinity();
    for (const index_t p : graph.predecessors(current)) {
      const simtime_t a = arrival_time(graph, result, comm, p, current);
      if (a > best_arrival) {
        best_arrival = a;
        best_pred = p;
      }
    }

    if (best_pred != invalid_index && best_arrival >= tt.start - eps) {
      step.gate = StartGate::dependency;
      step.gated_by = best_pred;
    } else if (tt.start <= eps) {
      step.gate = StartGate::source;
    } else {
      // Started the instant a worker freed: find the task whose end
      // released it, preferring the same worker row.
      const auto& list = ends_by_proc[static_cast<std::size_t>(tt.process)];
      auto it = std::lower_bound(
          list.begin(), list.end(),
          std::make_pair(tt.start - eps,
                         std::numeric_limits<index_t>::min()));
      index_t releaser = invalid_index;
      for (; it != list.end() && it->first <= tt.start + eps; ++it) {
        if (it->second == current) continue;
        if (releaser == invalid_index) releaser = it->second;
        if (result.timing[static_cast<std::size_t>(it->second)].worker ==
            tt.worker) {
          releaser = it->second;
          break;
        }
      }
      if (releaser != invalid_index) {
        step.gate = StartGate::worker;
        step.gated_by = releaser;
      } else if (best_pred != invalid_index) {
        // Numerical fallback: predecessor arrived earlier than the start
        // but nothing else explains the gap — still the closest cause.
        step.gate = StartGate::dependency;
        step.gated_by = best_pred;
      } else {
        step.gate = StartGate::source;
      }
    }
    chain.push_back(step);
    current = step.gated_by;
  }
  std::reverse(chain.begin(), chain.end());
  report.steps = std::move(chain);

  // Aggregations.
  index_t nsub = 0;
  level_t nlevels = 0;
  part_t ndomains = 0;
  for (const taskgraph::Task& t : graph.tasks()) {
    nsub = std::max(nsub, t.subiteration + 1);
    nlevels = std::max<level_t>(nlevels, static_cast<level_t>(t.level + 1));
    ndomains = std::max(ndomains, t.domain + 1);
  }
  report.by_subiteration.assign(static_cast<std::size_t>(nsub), 0);
  report.by_level.assign(static_cast<std::size_t>(nlevels), 0);
  report.by_domain.assign(static_cast<std::size_t>(ndomains), 0);
  report.by_process.assign(static_cast<std::size_t>(result.num_processes), 0);
  for (const CriticalStep& step : report.steps) {
    const taskgraph::Task& task = graph.task(step.task);
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(step.task)];
    report.task_time += step.duration;
    report.by_subiteration[static_cast<std::size_t>(task.subiteration)] +=
        step.duration;
    report.by_level[static_cast<std::size_t>(task.level)] += step.duration;
    report.by_domain[static_cast<std::size_t>(task.domain)] += step.duration;
    report.by_process[static_cast<std::size_t>(tt.process)] += step.duration;
    if (step.gate == StartGate::dependency) {
      report.gated_by_dependency += step.duration;
      if (result.timing[static_cast<std::size_t>(step.gated_by)].process !=
          tt.process)
        ++report.cross_process_handoffs;
    } else if (step.gate == StartGate::worker) {
      report.gated_by_worker += step.duration;
    }
  }
  return report;
}

simtime_t IdleBlameReport::at(part_t p, index_t s, IdleCause c) const {
  return blame[(static_cast<std::size_t>(p) *
                    static_cast<std::size_t>(num_subiterations) +
                static_cast<std::size_t>(s)) *
                   kNumIdleCauses +
               static_cast<std::size_t>(c)];
}

simtime_t IdleBlameReport::total(part_t p, IdleCause c) const {
  simtime_t sum = 0;
  for (index_t s = 0; s < num_subiterations; ++s) sum += at(p, s, c);
  return sum;
}

double IdleBlameReport::share(part_t p, IdleCause c) const {
  const double capacity =
      static_cast<double>(workers[static_cast<std::size_t>(p)]) * makespan;
  return capacity > 0 ? total(p, c) / capacity : 0.0;
}

double IdleBlameReport::overall_share(IdleCause c) const {
  double time = 0, capacity = 0;
  for (part_t p = 0; p < num_processes; ++p) {
    time += total(p, c);
    capacity +=
        static_cast<double>(workers[static_cast<std::size_t>(p)]) * makespan;
  }
  return capacity > 0 ? time / capacity : 0.0;
}

IdleBlameReport idle_blame(const taskgraph::TaskGraph& graph,
                           const SimResult& result) {
  const index_t n = graph.num_tasks();
  TAMP_EXPECTS(result.timing.size() == static_cast<std::size_t>(n),
               "simulation result does not match the task graph");
  IdleBlameReport report;
  report.num_processes = result.num_processes;
  report.makespan = result.makespan;
  report.workers = result.workers_used;

  index_t nsub = 0;
  for (const taskgraph::Task& t : graph.tasks())
    nsub = std::max(nsub, t.subiteration + 1);
  report.num_subiterations = std::max<index_t>(nsub, 1);
  report.blame.assign(static_cast<std::size_t>(report.num_processes) *
                          static_cast<std::size_t>(report.num_subiterations) *
                          kNumIdleCauses,
                      0.0);
  if (n == 0 || result.makespan <= 0) {
    report.window_end.assign(static_cast<std::size_t>(report.num_subiterations),
                             0.0);
    return report;
  }
  const simtime_t eps = time_epsilon(result.makespan);

  // Global subiteration windows: subiteration s is "current" until every
  // task of subiterations ≤ s has completed (running max of per-sub
  // latest ends). Windows tile [0, makespan].
  std::vector<simtime_t> sub_end(static_cast<std::size_t>(nsub),
                                 -std::numeric_limits<simtime_t>::infinity());
  // Latest end of (process, subiteration) work — "does p still have
  // subiteration-s work running or coming after time t?".
  std::vector<simtime_t> proc_sub_end(
      static_cast<std::size_t>(report.num_processes) *
          static_cast<std::size_t>(nsub),
      -std::numeric_limits<simtime_t>::infinity());
  std::vector<simtime_t> proc_last_end(
      static_cast<std::size_t>(report.num_processes), 0.0);
  for (index_t t = 0; t < n; ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    const auto s = static_cast<std::size_t>(graph.task(t).subiteration);
    sub_end[s] = std::max(sub_end[s], tt.end);
    auto& pse = proc_sub_end[static_cast<std::size_t>(tt.process) * nsub + s];
    pse = std::max(pse, tt.end);
    auto& ple = proc_last_end[static_cast<std::size_t>(tt.process)];
    ple = std::max(ple, tt.end);
  }
  report.window_end.assign(static_cast<std::size_t>(report.num_subiterations),
                           0.0);
  simtime_t running = 0;
  for (index_t s = 0; s < nsub; ++s) {
    running = std::max(running, sub_end[static_cast<std::size_t>(s)]);
    report.window_end[static_cast<std::size_t>(s)] = running;
  }
  // Guard against numerical shortfall: the final window must reach the
  // makespan so idle accounting is exact.
  report.window_end[static_cast<std::size_t>(nsub - 1)] = result.makespan;
  index_t last_window = 0;
  for (index_t s = 0; s < nsub; ++s) {
    const simtime_t begin =
        s == 0 ? 0.0 : report.window_end[static_cast<std::size_t>(s - 1)];
    if (report.window_end[static_cast<std::size_t>(s)] > begin + eps)
      last_window = s;
  }

  auto classify = [&](part_t p, index_t s, simtime_t x) {
    if (s == last_window && x >= proc_last_end[static_cast<std::size_t>(p)] - eps)
      return IdleCause::tail_imbalance;
    if (proc_sub_end[static_cast<std::size_t>(p) * nsub +
                     static_cast<std::size_t>(s)] > x + eps)
      return IdleCause::dependency_wait;
    return IdleCause::starvation;
  };
  auto account = [&](part_t p, index_t s, simtime_t from, simtime_t to) {
    if (to <= from) return;
    // Tail status can flip once inside a piece: split at the process's
    // last task end when it falls inside the last window's piece.
    const simtime_t cut = proc_last_end[static_cast<std::size_t>(p)];
    std::array<std::pair<simtime_t, simtime_t>, 2> pieces{
        {{from, to}, {0, 0}}};
    if (s == last_window && cut > from + eps && cut < to - eps)
      pieces = {{{from, cut}, {cut, to}}};
    for (const auto& [a, b] : pieces) {
      if (b <= a) continue;
      const IdleCause c = classify(p, s, a);
      report.blame[(static_cast<std::size_t>(p) *
                        static_cast<std::size_t>(report.num_subiterations) +
                    static_cast<std::size_t>(s)) *
                       kNumIdleCauses +
                   static_cast<std::size_t>(c)] += b - a;
    }
  };

  // Per-worker busy spans → idle gaps → window-sliced attribution.
  std::vector<std::vector<std::pair<simtime_t, simtime_t>>> busy;
  std::vector<std::size_t> row_base(
      static_cast<std::size_t>(report.num_processes) + 1, 0);
  for (part_t p = 0; p < report.num_processes; ++p)
    row_base[static_cast<std::size_t>(p) + 1] =
        row_base[static_cast<std::size_t>(p)] +
        static_cast<std::size_t>(report.workers[static_cast<std::size_t>(p)]);
  busy.resize(row_base.back());
  for (index_t t = 0; t < n; ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    busy[row_base[static_cast<std::size_t>(tt.process)] +
         static_cast<std::size_t>(tt.worker)]
        .emplace_back(tt.start, tt.end);
  }
  for (part_t p = 0; p < report.num_processes; ++p) {
    for (int w = 0; w < report.workers[static_cast<std::size_t>(p)]; ++w) {
      auto& spans = busy[row_base[static_cast<std::size_t>(p)] +
                         static_cast<std::size_t>(w)];
      std::sort(spans.begin(), spans.end());
      simtime_t cursor = 0;
      auto emit_gap = [&](simtime_t a, simtime_t b) {
        if (b <= a) return;
        // Slice the gap by subiteration windows.
        for (index_t s = 0; s < nsub; ++s) {
          const simtime_t wbegin =
              s == 0 ? 0.0
                     : report.window_end[static_cast<std::size_t>(s - 1)];
          const simtime_t wend =
              report.window_end[static_cast<std::size_t>(s)];
          account(p, s, std::max(a, wbegin), std::min(b, wend));
        }
      };
      for (const auto& [start, end] : spans) {
        emit_gap(cursor, start);
        cursor = std::max(cursor, end);
      }
      emit_gap(cursor, result.makespan);
    }
  }
  return report;
}

DoctorReport diagnose(const taskgraph::TaskGraph& graph,
                      const SimResult& result, const CommModel& comm) {
  DoctorReport report;
  report.makespan = result.makespan;
  report.occupancy = result.occupancy();
  report.critical = realized_critical_path(graph, result, comm);
  report.blame = idle_blame(graph, result);
  report.activity = subiteration_activity(graph, result);
  return report;
}

void print_doctor_report(std::ostream& os, const taskgraph::TaskGraph& graph,
                         const DoctorReport& report) {
  const CriticalPathReport& cp = report.critical;
  const IdleBlameReport& blame = report.blame;
  const simtime_t ms = report.makespan;
  // Simulated makespans are cost units in the thousands; measured runs
  // are wall-clock seconds well under that. Pick the time-column
  // precision so both read naturally.
  const int td = ms >= 1000.0 ? 0 : 4;

  os << "== schedule doctor ==\n"
     << "makespan: " << fmt_double(ms, td)
     << "   static critical path: " << fmt_double(cp.static_lower_bound, td)
     << "   realized/static: "
     << fmt_double(cp.static_lower_bound > 0 ? ms / cp.static_lower_bound : 0.0,
                   2)
     << "x   occupancy: " << fmt_percent(report.occupancy) << '\n'
     << "realized critical path: " << cp.steps.size() << " tasks, "
     << fmt_double(cp.task_time, td) << " on-chain work ("
     << fmt_percent(ms > 0 ? cp.task_time / ms : 0.0)
     << " of makespan), gates: dependency "
     << fmt_double(cp.gated_by_dependency, td) << " / worker "
     << fmt_double(cp.gated_by_worker, td) << ", cross-process handoffs: "
     << cp.cross_process_handoffs << '\n';

  TablePrinter by_sub("critical-path time by subiteration");
  by_sub.header({"subiteration", "chain time", "% makespan", "window",
                 "silent processes"});
  const auto nsub = static_cast<index_t>(cp.by_subiteration.size());
  for (index_t s = 0; s < nsub; ++s) {
    const simtime_t wbegin =
        s == 0 ? 0.0 : blame.window_end[static_cast<std::size_t>(s - 1)];
    const simtime_t wend = blame.window_end[static_cast<std::size_t>(s)];
    index_t silent = 0;
    for (part_t p = 0; p < blame.num_processes; ++p)
      if (!report
               .activity[static_cast<std::size_t>(p) *
                             static_cast<std::size_t>(nsub) +
                         static_cast<std::size_t>(s)]
               .active())
        ++silent;
    by_sub.row({std::to_string(s),
                fmt_double(cp.by_subiteration[static_cast<std::size_t>(s)], td),
                fmt_percent(ms > 0 ? cp.by_subiteration
                                             [static_cast<std::size_t>(s)] /
                                         ms
                                   : 0.0),
                "[" + fmt_double(wbegin, td) + ", " + fmt_double(wend, td) +
                    ")",
                std::to_string(silent) + "/" +
                    std::to_string(blame.num_processes)});
  }
  by_sub.print(os);

  TablePrinter by_level("critical-path time by temporal level (phase)");
  by_level.header({"level", "chain time", "% makespan"});
  for (std::size_t l = 0; l < cp.by_level.size(); ++l)
    by_level.row({"t=" + std::to_string(l), fmt_double(cp.by_level[l], td),
                  fmt_percent(ms > 0 ? cp.by_level[l] / ms : 0.0)});
  by_level.print(os);

  TablePrinter blame_table("idle blame per process (share of capacity)");
  blame_table.header(
      {"process", "idle", "dependency-wait", "starvation", "tail"});
  for (part_t p = 0; p < blame.num_processes; ++p) {
    const double dep = blame.share(p, IdleCause::dependency_wait);
    const double sta = blame.share(p, IdleCause::starvation);
    const double tail = blame.share(p, IdleCause::tail_imbalance);
    blame_table.row({std::to_string(p), fmt_percent(dep + sta + tail),
                     fmt_percent(dep), fmt_percent(sta), fmt_percent(tail)});
  }
  blame_table.separator();
  blame_table.row(
      {"all",
       fmt_percent(blame.overall_share(IdleCause::dependency_wait) +
                   blame.overall_share(IdleCause::starvation) +
                   blame.overall_share(IdleCause::tail_imbalance)),
       fmt_percent(blame.overall_share(IdleCause::dependency_wait)),
       fmt_percent(blame.overall_share(IdleCause::starvation)),
       fmt_percent(blame.overall_share(IdleCause::tail_imbalance))});
  blame_table.print(os);

  // The verdict line the paper draws from its Gantt charts: flag when
  // the machine spends a meaningful slice of capacity idle, and name
  // the dominant cause of that idleness.
  const double dep = blame.overall_share(IdleCause::dependency_wait);
  const double starvation = blame.overall_share(IdleCause::starvation);
  const double tail = blame.overall_share(IdleCause::tail_imbalance);
  const double idle_total = dep + starvation + tail;
  os << "diagnosis: ";
  if (idle_total <= 0.15) {
    os << "schedule is healthy (" << fmt_percent(idle_total)
       << " of capacity idle, below the 15% alert threshold)\n";
  } else if (starvation >= dep && starvation >= tail) {
    os << "level-imbalance starvation dominates ("
       << fmt_percent(starvation)
       << " of capacity idle with no current-subiteration work) — the "
          "partition, not the scheduler, is the bottleneck\n";
  } else if (dep >= tail) {
    os << "dependency waits dominate (" << fmt_percent(dep)
       << " of capacity) — critical-path structure or communication is "
          "the bottleneck\n";
  } else {
    os << "tail imbalance dominates (" << fmt_percent(tail)
       << " of capacity) — the last subiteration drains unevenly\n";
  }
  static_cast<void>(graph);
}

std::string doctor_blame_csv(const DoctorReport& report) {
  const IdleBlameReport& blame = report.blame;
  std::ostringstream os;
  os << "process,subiteration,dependency_wait,starvation,tail_imbalance,"
        "idle_total,window_capacity\n";
  for (part_t p = 0; p < blame.num_processes; ++p) {
    for (index_t s = 0; s < blame.num_subiterations; ++s) {
      const simtime_t dep = blame.at(p, s, IdleCause::dependency_wait);
      const simtime_t sta = blame.at(p, s, IdleCause::starvation);
      const simtime_t tail = blame.at(p, s, IdleCause::tail_imbalance);
      const simtime_t wbegin =
          s == 0 ? 0.0 : blame.window_end[static_cast<std::size_t>(s - 1)];
      const simtime_t wend = blame.window_end[static_cast<std::size_t>(s)];
      const double capacity =
          static_cast<double>(blame.workers[static_cast<std::size_t>(p)]) *
          (wend - wbegin);
      os << p << ',' << s << ',' << fmt_double(dep, 3) << ','
         << fmt_double(sta, 3) << ',' << fmt_double(tail, 3) << ','
         << fmt_double(dep + sta + tail, 3) << ',' << fmt_double(capacity, 3)
         << '\n';
    }
  }
  return os.str();
}

void write_doctor_heatmap_svg(const DoctorReport& report,
                              const std::string& path) {
  const IdleBlameReport& blame = report.blame;
  const part_t nproc = blame.num_processes;
  const index_t nsub = blame.num_subiterations;
  const double cell_w = 64, cell_h = 18;
  const double left = 56, top = 34, legend_h = 40;
  const double width = left + cell_w * std::max<index_t>(nsub, 1) + 16;
  const double height =
      top + cell_h * std::max<part_t>(nproc, 1) + legend_h + 16;
  SvgWriter svg(width, height);
  svg.text(8, 18, "idle blame heatmap (rows: processes, cols: subiteration "
                  "windows)",
           11.0);
  static const char* kCauseColor[kNumIdleCauses] = {
      "#4c78a8",  // dependency_wait — blue
      "#e45756",  // starvation — red
      "#f2a14a",  // tail_imbalance — orange
  };
  for (index_t s = 0; s < nsub; ++s)
    svg.text(left + (s + 0.5) * cell_w, top - 6, "s" + std::to_string(s), 9.0,
             "middle");
  for (part_t p = 0; p < nproc; ++p) {
    svg.text(left - 6, top + (p + 0.75) * cell_h, "p" + std::to_string(p), 9.0,
             "end");
    for (index_t s = 0; s < nsub; ++s) {
      const simtime_t wbegin =
          s == 0 ? 0.0 : blame.window_end[static_cast<std::size_t>(s - 1)];
      const simtime_t wend = blame.window_end[static_cast<std::size_t>(s)];
      const double capacity =
          static_cast<double>(blame.workers[static_cast<std::size_t>(p)]) *
          (wend - wbegin);
      double vals[kNumIdleCauses];
      double idle = 0;
      for (int c = 0; c < kNumIdleCauses; ++c) {
        vals[c] = blame.at(p, s, static_cast<IdleCause>(c));
        idle += vals[c];
      }
      const int dominant = static_cast<int>(
          std::max_element(vals, vals + kNumIdleCauses) - vals);
      const double share = capacity > 0 ? idle / capacity : 0.0;
      const double x = left + s * cell_w, y = top + p * cell_h;
      svg.rect(x, y, cell_w - 1, cell_h - 1, "#eeeeee");
      if (share > 0) {
        std::ostringstream tip;
        tip << "p" << p << " s" << s << ": idle "
            << fmt_percent(share) << " (" << to_string(
                   static_cast<IdleCause>(dominant))
            << ")";
        svg.rect(x, y, cell_w - 1, cell_h - 1, kCauseColor[dominant],
                 std::min(1.0, 0.15 + 0.85 * share), tip.str());
      }
    }
  }
  // Legend.
  const double ly = top + cell_h * std::max<part_t>(nproc, 1) + 16;
  double lx = left;
  for (int c = 0; c < kNumIdleCauses; ++c) {
    svg.rect(lx, ly, 12, 12, kCauseColor[c]);
    svg.text(lx + 16, ly + 10, to_string(static_cast<IdleCause>(c)), 9.0);
    lx += 130;
  }
  svg.text(left, ly + 26,
           "shade = idle share of the cell's window capacity; hue = dominant "
           "cause",
           9.0);
  svg.save(path);
}

void publish_doctor_metrics(const taskgraph::TaskGraph& graph,
                            const DoctorReport& report,
                            const std::string& prefix) {
  obs::gauge(prefix + "makespan").set(report.makespan);
  obs::gauge(prefix + "occupancy").set(report.occupancy);
  obs::gauge(prefix + "critical_path.static_lower_bound")
      .set(report.critical.static_lower_bound);
  obs::gauge(prefix + "critical_path.task_time")
      .set(report.critical.task_time);
  obs::gauge(prefix + "critical_path.steps")
      .set(static_cast<double>(report.critical.steps.size()));
  obs::gauge(prefix + "critical_path.cross_process_handoffs")
      .set(static_cast<double>(report.critical.cross_process_handoffs));
  obs::gauge(prefix + "blame.dependency_wait_share")
      .set(report.blame.overall_share(IdleCause::dependency_wait));
  obs::gauge(prefix + "blame.starvation_share")
      .set(report.blame.overall_share(IdleCause::starvation));
  obs::gauge(prefix + "blame.tail_imbalance_share")
      .set(report.blame.overall_share(IdleCause::tail_imbalance));
  obs::Histogram& per_proc =
      obs::histogram(prefix + "blame.process_starvation_share");
  for (part_t p = 0; p < report.blame.num_processes; ++p)
    per_proc.record(report.blame.share(p, IdleCause::starvation));
  obs::Histogram& lengths = obs::histogram(prefix + "task_length");
  for (index_t t = 0; t < graph.num_tasks(); ++t)
    lengths.record(graph.task(t).cost);
}

void print_stage_overlap(std::ostream& os, const StageOverlapReport& r) {
  os << "stage overlap (" << (r.overlapped ? "overlap" : "sync") << " mode, "
     << r.iterations << " iterations): wall "
     << fmt_double(r.wall_seconds * 1e3, 1) << " ms\n"
     << "  solve " << fmt_double(r.solve_seconds * 1e3, 1) << " ms   prep "
     << fmt_double(r.prep_seconds * 1e3, 1) << " ms ("
     << fmt_double(r.hideable_prep_seconds * 1e3, 1) << " ms hideable)\n"
     << "  prep hidden under solve: "
     << fmt_double(r.hidden_seconds * 1e3, 1)
     << " ms   prep-exposed (pipeline stall blame): "
     << fmt_double(r.exposed_seconds() * 1e3, 1) << " ms\n"
     << "  overlap efficiency: " << fmt_percent(r.overlap_efficiency())
     << '\n';
}

void publish_stage_overlap_metrics(const StageOverlapReport& r,
                                   const std::string& prefix) {
  obs::gauge(prefix + "iterations").set(static_cast<double>(r.iterations));
  obs::gauge(prefix + "overlapped").set(r.overlapped ? 1.0 : 0.0);
  obs::gauge(prefix + "wall_seconds").set(r.wall_seconds);
  obs::gauge(prefix + "prep_seconds").set(r.prep_seconds);
  obs::gauge(prefix + "solve_seconds").set(r.solve_seconds);
  obs::gauge(prefix + "prep_hidden_seconds").set(r.hidden_seconds);
  obs::gauge(prefix + "prep_exposed_seconds").set(r.exposed_seconds());
  obs::gauge(prefix + "overlap_efficiency").set(r.overlap_efficiency());
}

}  // namespace tamp::sim
