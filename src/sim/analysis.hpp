// Schedule analysis: quantifying *where* a schedule loses time.
//
// The paper reads its conclusions off Gantt charts — "continuous blocks
// of inactivity", "processes only work during the first and third
// subiteration", "the identifiable pattern is clearly apparent". These
// helpers turn those visual observations into numbers that benches and
// tests can assert on:
//   * per-(process, subiteration) activity spans and idle shares,
//   * the concurrency profile (how many workers are busy at each instant),
//   * contiguous idle blocks per process (count, total, longest).
#pragma once

#include <limits>
#include <vector>

#include "sim/simulate.hpp"

namespace tamp::sim {

/// Activity of one process during one subiteration. Absence of tasks is
/// explicit: first_start/last_end stay at ±infinity (a 0 would be
/// indistinguishable from "started at t=0") — check active() before
/// reading them.
struct SubiterationActivity {
  simtime_t busy = 0;  ///< Σ task durations
  simtime_t first_start =
      std::numeric_limits<simtime_t>::infinity();  ///< earliest task start
  simtime_t last_end =
      -std::numeric_limits<simtime_t>::infinity();  ///< latest task end
  index_t tasks = 0;

  /// Whether this (process, subiteration) cell ran anything at all.
  [[nodiscard]] bool active() const { return tasks > 0; }
};

/// activity[p * nsub + s] for every process and subiteration.
std::vector<SubiterationActivity> subiteration_activity(
    const taskgraph::TaskGraph& graph, const SimResult& result);

/// Piecewise-constant concurrency profile: at time breaks_[i] the number
/// of busy workers becomes values_[i].
struct ConcurrencyProfile {
  std::vector<simtime_t> breaks;
  std::vector<index_t> values;

  /// Time-weighted average concurrency.
  [[nodiscard]] double average(simtime_t makespan) const;
  /// Peak concurrency.
  [[nodiscard]] index_t peak() const;
  /// Fraction of the makespan with concurrency below `threshold`.
  [[nodiscard]] double fraction_below(index_t threshold,
                                      simtime_t makespan) const;
};

ConcurrencyProfile concurrency_profile(const SimResult& result);

/// Contiguous idle blocks of one process (intervals where none of its
/// workers runs anything, within [0, makespan]).
struct IdleBlocks {
  index_t count = 0;
  simtime_t total = 0;
  simtime_t longest = 0;
};

IdleBlocks idle_blocks(const SimResult& result, part_t process);

}  // namespace tamp::sim
