// MPI-style message aggregation statistics.
//
// FLUSEPA aggregates halo exchanges: all data a process sends another
// process within one subiteration travels in one message. Counting raw
// cross-process dependency edges (paper Fig 11b's estimate) therefore
// over-counts the *messages*, though it tracks the *volume*. These
// helpers compute both views so the communication ablations can report
// message count, aggregated volume, and the edge-count estimate side by
// side.
#pragma once

#include <vector>

#include "taskgraph/taskgraph.hpp"

namespace tamp::sim {

struct MessageStats {
  /// Distinct (source process, destination process, subiteration)
  /// triples with at least one crossing dependency — MPI messages under
  /// subiteration-level aggregation.
  index_t messages = 0;
  /// Σ over crossing dependency edges of the producer task's object
  /// count — bytes-proportional volume.
  weight_t volume = 0;
  /// Raw crossing dependency edges (the paper's Fig 11b estimate).
  weight_t crossing_edges = 0;
  /// Process pairs that ever communicate (neighbourhood size).
  index_t process_pairs = 0;
};

/// Aggregate cross-process communication of `graph` under the given
/// domain→process placement.
MessageStats message_statistics(const taskgraph::TaskGraph& graph,
                                const std::vector<part_t>& domain_to_process);

}  // namespace tamp::sim
