#include "sim/trace_json.hpp"

#include <fstream>
#include <sstream>

namespace tamp::sim {

namespace {

void append_event(std::ostringstream& os, bool& first, const std::string& name,
                  int pid, int tid, double start_us, double duration_us,
                  const taskgraph::Task& task) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name":")" << name << R"(","ph":"X","pid":)" << pid
     << R"(,"tid":)" << tid << R"(,"ts":)" << start_us << R"(,"dur":)"
     << duration_us << R"(,"args":{"subiteration":)" << task.subiteration
     << R"(,"level":)" << static_cast<int>(task.level) << R"(,"type":")"
     << taskgraph::to_string(task.type) << R"(","locality":")"
     << taskgraph::to_string(task.locality) << R"(","domain":)" << task.domain
     << R"(,"objects":)" << task.num_objects << "}}";
}

std::string finish(std::ostringstream& body) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n" << body.str() << "\n]}\n";
  return os.str();
}

}  // namespace

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const SimResult& result) {
  TAMP_EXPECTS(result.timing.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "result does not match graph");
  std::ostringstream body;
  bool first = true;
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), tt.process, tt.worker,
                 tt.start, tt.end - tt.start, graph.task(t));
  }
  return finish(body);
}

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const runtime::ExecutionReport& report) {
  TAMP_EXPECTS(report.spans.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "report does not match graph");
  std::ostringstream body;
  bool first = true;
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const auto& span = report.spans[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), span.process,
                 span.worker, span.start * 1e6, (span.end - span.start) * 1e6,
                 graph.task(t));
  }
  return finish(body);
}

void save_chrome_trace(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open trace output: " + path);
  out << json;
  if (!out.good()) throw runtime_failure("error writing trace to: " + path);
}

}  // namespace tamp::sim
