#include "sim/trace_json.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace tamp::sim {

namespace {

void append_event(std::ostringstream& os, bool& first, const std::string& name,
                  int pid, int tid, double start_us, double duration_us,
                  const taskgraph::Task& task) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name":")" << obs::json_escape(name) << R"(","ph":"X","pid":)"
     << pid << R"(,"tid":)" << tid << R"(,"ts":)" << start_us << R"(,"dur":)"
     << duration_us << R"(,"args":{"subiteration":)" << task.subiteration
     << R"(,"level":)" << static_cast<int>(task.level) << R"(,"type":")"
     << taskgraph::to_string(task.type) << R"(","locality":")"
     << taskgraph::to_string(task.locality) << R"(","domain":)" << task.domain
     << R"(,"objects":)" << task.num_objects << "}}";
}

/// Perfetto/chrome://tracing label pids as "process_name" and tids as
/// "thread_name"; emit one metadata event per process/worker seen.
void append_task_metadata(std::ostringstream& os, bool& first,
                          const std::vector<TaskTiming>& timing) {
  std::vector<int> workers;  // max worker id + 1, per process
  for (const TaskTiming& tt : timing) {
    const auto p = static_cast<std::size_t>(tt.process);
    if (workers.size() <= p) workers.resize(p + 1, 0);
    workers[p] = std::max(workers[p], tt.worker + 1);
  }
  for (std::size_t p = 0; p < workers.size(); ++p) {
    obs::append_process_name(os, first, static_cast<int>(p),
                             "process " + std::to_string(p));
    for (int w = 0; w < workers[p]; ++w)
      obs::append_thread_name(os, first, static_cast<int>(p), w,
                              "worker " + std::to_string(w));
  }
}

void append_task_metadata(std::ostringstream& os, bool& first,
                          const std::vector<runtime::ExecutionReport::Span>&
                              spans) {
  std::vector<TaskTiming> timing;
  timing.reserve(spans.size());
  for (const auto& s : spans)
    timing.push_back({s.start, s.end, s.process, s.worker});
  append_task_metadata(os, first, timing);
}

std::string finish(std::ostringstream& body) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n" << body.str() << "\n]}\n";
  return os.str();
}

/// Append the global TraceSession's pipeline-phase events under a distinct
/// high pid. Pipeline wall-clock time and simulated task time are
/// different time bases; separate pids keep both readable side by side on
/// one Perfetto timeline.
void append_session_events(std::ostringstream& os, bool& first) {
  const auto events = obs::TraceSession::instance().snapshot();
  if (events.empty()) return;
  obs::append_process_name(os, first, obs::kPipelineTracePid, "tamp pipeline");
  std::uint32_t max_thread = 0;
  for (const auto& ev : events) max_thread = std::max(max_thread, ev.thread);
  for (std::uint32_t t = 0; t <= max_thread; ++t)
    obs::append_thread_name(os, first, obs::kPipelineTracePid,
                            static_cast<int>(t),
                            t == 0 ? "main" : "worker " + std::to_string(t));
  obs::append_chrome_events(os, first, events, obs::kPipelineTracePid);
}

/// Shared body of the plain and merged SimResult exporters: metadata,
/// task spans, and ready-queue depth counter tracks (one per process).
void append_sim_body(std::ostringstream& body, bool& first,
                     const taskgraph::TaskGraph& graph,
                     const SimResult& result) {
  append_task_metadata(body, first, result.timing);
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), tt.process, tt.worker,
                 tt.start, tt.end - tt.start, graph.task(t));
  }
  for (const QueueDepthSample& s : result.queue_depth) {
    if (!first) body << ",\n";
    first = false;
    body << R"(  {"name":"ready_queue","ph":"C","pid":)" << s.process
         << R"(,"tid":0,"ts":)" << s.time << R"(,"args":{"depth":)" << s.depth
         << "}}";
  }
}

}  // namespace

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const SimResult& result) {
  TAMP_EXPECTS(result.timing.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "result does not match graph");
  std::ostringstream body;
  bool first = true;
  append_sim_body(body, first, graph, result);
  return finish(body);
}

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const runtime::ExecutionReport& report) {
  TAMP_EXPECTS(report.spans.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "report does not match graph");
  std::ostringstream body;
  bool first = true;
  append_task_metadata(body, first, report.spans);
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const auto& span = report.spans[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), span.process,
                 span.worker, span.start * 1e6, (span.end - span.start) * 1e6,
                 graph.task(t));
  }
  return finish(body);
}

std::string to_chrome_trace_merged(const taskgraph::TaskGraph& graph,
                                   const SimResult& result) {
  TAMP_EXPECTS(result.timing.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "result does not match graph");
  std::ostringstream body;
  bool first = true;
  append_sim_body(body, first, graph, result);
  append_session_events(body, first);
  return finish(body);
}

void save_chrome_trace(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open trace output: " + path);
  out << json;
  if (!out.good()) throw runtime_failure("error writing trace to: " + path);
}

}  // namespace tamp::sim
