#include "sim/trace_json.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/export.hpp"

namespace tamp::sim {

namespace {

void append_event(std::ostringstream& os, bool& first, const std::string& name,
                  int pid, int tid, double start_us, double duration_us,
                  const taskgraph::Task& task) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name":")" << obs::json_escape(name) << R"(","ph":"X","pid":)"
     << pid << R"(,"tid":)" << tid << R"(,"ts":)" << start_us << R"(,"dur":)"
     << duration_us << R"(,"args":{"subiteration":)" << task.subiteration
     << R"(,"level":)" << static_cast<int>(task.level) << R"(,"type":")"
     << taskgraph::to_string(task.type) << R"(","locality":")"
     << taskgraph::to_string(task.locality) << R"(","domain":)" << task.domain
     << R"(,"objects":)" << task.num_objects << "}}";
}

/// Perfetto/chrome://tracing label pids as "process_name" and tids as
/// "thread_name"; emit one metadata event per process/worker seen.
void append_task_metadata(std::ostringstream& os, bool& first,
                          const std::vector<TaskTiming>& timing) {
  std::vector<int> workers;  // max worker id + 1, per process
  for (const TaskTiming& tt : timing) {
    const auto p = static_cast<std::size_t>(tt.process);
    if (workers.size() <= p) workers.resize(p + 1, 0);
    workers[p] = std::max(workers[p], tt.worker + 1);
  }
  for (std::size_t p = 0; p < workers.size(); ++p) {
    obs::append_process_name(os, first, static_cast<int>(p),
                             "process " + std::to_string(p));
    for (int w = 0; w < workers[p]; ++w)
      obs::append_thread_name(os, first, static_cast<int>(p), w,
                              "worker " + std::to_string(w));
  }
}

void append_task_metadata(std::ostringstream& os, bool& first,
                          const std::vector<runtime::ExecutionReport::Span>&
                              spans) {
  std::vector<TaskTiming> timing;
  timing.reserve(spans.size());
  for (const auto& s : spans)
    timing.push_back({s.start, s.end, s.process, s.worker});
  append_task_metadata(os, first, timing);
}

std::string finish(std::ostringstream& body) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n" << body.str() << "\n]}\n";
  return os.str();
}

/// Append the global TraceSession's pipeline-phase events under a distinct
/// high pid. Pipeline wall-clock time and simulated task time are
/// different time bases; separate pids keep both readable side by side on
/// one Perfetto timeline.
void append_session_events(std::ostringstream& os, bool& first) {
  const auto events = obs::TraceSession::instance().snapshot();
  if (events.empty()) return;
  obs::append_process_name(os, first, obs::kPipelineTracePid, "tamp pipeline");
  std::uint32_t max_thread = 0;
  for (const auto& ev : events) max_thread = std::max(max_thread, ev.thread);
  for (std::uint32_t t = 0; t <= max_thread; ++t)
    obs::append_thread_name(os, first, obs::kPipelineTracePid,
                            static_cast<int>(t),
                            t == 0 ? "main" : "worker " + std::to_string(t));
  obs::append_chrome_events(os, first, events, obs::kPipelineTracePid);
}

/// Shared body of the plain and merged SimResult exporters: metadata,
/// task spans, and ready-queue depth counter tracks (one per process).
void append_sim_body(std::ostringstream& body, bool& first,
                     const taskgraph::TaskGraph& graph,
                     const SimResult& result) {
  append_task_metadata(body, first, result.timing);
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const TaskTiming& tt = result.timing[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), tt.process, tt.worker,
                 tt.start, tt.end - tt.start, graph.task(t));
  }
  for (const QueueDepthSample& s : result.queue_depth) {
    if (!first) body << ",\n";
    first = false;
    body << R"(  {"name":"ready_queue","ph":"C","pid":)" << s.process
         << R"(,"tid":0,"ts":)" << s.time << R"(,"args":{"depth":)" << s.depth
         << "}}";
  }
}

void append_counter(std::ostringstream& os, bool& first, const char* name,
                    int pid, double ts_us, const char* key,
                    std::int64_t value) {
  if (!first) os << ",\n";
  first = false;
  os << R"(  {"name":")" << name << R"(","ph":"C","pid":)" << pid
     << R"(,"tid":0,"ts":)" << ts_us << R"(,"args":{")" << key << R"(":)"
     << value << "}}";
}

/// Render the flight recorder's event stream as per-process counter
/// tracks: ready-queue depth (sampled at each dequeue), concurrently
/// idle workers (from idle_begin/idle_end pairing), and steal activity
/// (cumulative attempts/successes plus attempts − successes in flight).
void append_flight_counters(std::ostringstream& body, bool& first,
                            const runtime::ExecutionReport& report) {
  if (!report.flight || report.workers_per_process <= 0) return;
  const auto np = static_cast<std::size_t>(report.num_processes);
  std::vector<std::int64_t> idle(np, 0);
  std::vector<std::int64_t> attempts(np, 0), successes(np, 0);
  for (const obs::WorkerFlightEvent& we : report.flight->merged()) {
    const int p = we.worker / report.workers_per_process;
    const auto up = static_cast<std::size_t>(p);
    if (up >= np) continue;  // defensive: ring count vs report mismatch
    const double ts = we.event.t_seconds * 1e6;
    switch (we.event.kind) {
      case obs::FlightEventKind::task_dequeue:
        append_counter(body, first, "ready_queue", p, ts, "depth",
                       we.event.b < 0 ? 0 : we.event.b);
        break;
      case obs::FlightEventKind::idle_begin:
      case obs::FlightEventKind::idle_end:
        idle[up] += we.event.kind == obs::FlightEventKind::idle_begin ? 1 : -1;
        if (idle[up] < 0) idle[up] = 0;  // ring overwrote the begin
        append_counter(body, first, "idle_workers", p, ts, "idle", idle[up]);
        break;
      case obs::FlightEventKind::steal_attempt:
      case obs::FlightEventKind::steal_success: {
        if (we.event.kind == obs::FlightEventKind::steal_attempt)
          ++attempts[up];
        else
          ++successes[up];
        if (!first) body << ",\n";
        first = false;
        body << R"(  {"name":"steals","ph":"C","pid":)" << p
             << R"(,"tid":0,"ts":)" << ts << R"(,"args":{"attempts":)"
             << attempts[up] << R"(,"successes":)" << successes[up] << "}}";
        append_counter(body, first, "steals_inflight", p, ts, "inflight",
                       attempts[up] - successes[up]);
        break;
      }
      default:
        break;
    }
  }
}

/// Shared body of the plain and merged ExecutionReport exporters.
void append_measured_body(std::ostringstream& body, bool& first,
                          const taskgraph::TaskGraph& graph,
                          const runtime::ExecutionReport& report) {
  append_task_metadata(body, first, report.spans);
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const auto& span = report.spans[static_cast<std::size_t>(t)];
    append_event(body, first, graph.task(t).label(), span.process,
                 span.worker, span.start * 1e6, (span.end - span.start) * 1e6,
                 graph.task(t));
  }
  append_flight_counters(body, first, report);
}

}  // namespace

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const SimResult& result) {
  TAMP_EXPECTS(result.timing.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "result does not match graph");
  std::ostringstream body;
  bool first = true;
  append_sim_body(body, first, graph, result);
  return finish(body);
}

std::string to_chrome_trace(const taskgraph::TaskGraph& graph,
                            const runtime::ExecutionReport& report) {
  TAMP_EXPECTS(report.spans.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "report does not match graph");
  std::ostringstream body;
  bool first = true;
  append_measured_body(body, first, graph, report);
  return finish(body);
}

std::string to_chrome_trace_merged(const taskgraph::TaskGraph& graph,
                                   const runtime::ExecutionReport& report) {
  TAMP_EXPECTS(report.spans.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "report does not match graph");
  std::ostringstream body;
  bool first = true;
  append_measured_body(body, first, graph, report);
  append_session_events(body, first);
  return finish(body);
}

std::string to_chrome_trace_merged(const taskgraph::TaskGraph& graph,
                                   const SimResult& result) {
  TAMP_EXPECTS(result.timing.size() ==
                   static_cast<std::size_t>(graph.num_tasks()),
               "result does not match graph");
  std::ostringstream body;
  bool first = true;
  append_sim_body(body, first, graph, result);
  append_session_events(body, first);
  return finish(body);
}

void save_chrome_trace(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open trace output: " + path);
  out << json;
  if (!out.good()) throw runtime_failure("error writing trace to: " + path);
}

}  // namespace tamp::sim
