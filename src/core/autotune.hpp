// Automatic domain-granularity selection — the paper's §IX perspective:
// "exploring ways to automatically determine the best domain granularity
// with respect to the target machine's number of cores."
//
// The granularity trade-off: more domains → finer tasks → better
// pipelining and occupancy, but more interfaces → more communication and
// runtime overhead. suggest_domain_count() sweeps candidate counts
// through the event simulator *with a communication model enabled*, so
// the score reflects both sides of the trade, and returns the sweep for
// inspection alongside the winner.
#pragma once

#include <vector>

#include "core/pipeline.hpp"

namespace tamp::core {

struct AutotuneOptions {
  partition::Strategy strategy = partition::Strategy::mc_tl;
  part_t nprocesses = 4;
  int workers_per_process = 4;
  /// Candidate domain counts; empty = powers-of-two multiples of
  /// nprocesses from ×1 up to ×max_multiplier.
  std::vector<part_t> candidates;
  int max_multiplier = 32;
  /// Communication model used for scoring (zero latency would always
  /// favour the finest granularity; the default charges a realistic
  /// latency per crossing edge, in work units).
  sim::CommModel comm{/*latency=*/20.0, /*per_object=*/0.01};
  /// Per-task runtime-management cost (work units). The granularity
  /// counterweight: doubling the domain count roughly doubles the task
  /// count, and each task pays this.
  simtime_t task_overhead = 2.0;
  /// How the sweep is scheduled. `sync` prepares and scores candidates
  /// one after another; `overlap` prepares candidate k+1 on the
  /// work-stealing pool while candidate k is being simulated. The sweep
  /// result is bit-identical either way: every row is a pure function of
  /// (mesh, candidate, opts) — the historical bug this knob guards
  /// against was the sweep reading shared pipeline gauges mid-candidate,
  /// which assumed stages completed synchronously.
  PipelineMode pipeline = PipelineMode::sync;
  /// Pool threads for overlap mode (0 = TAMP_PARTITION_THREADS env).
  int threads = 0;
  std::uint64_t seed = 1;
};

struct AutotuneRow {
  part_t ndomains = 0;
  simtime_t makespan = 0;       ///< with communication model
  simtime_t ideal_makespan = 0; ///< zero-communication reference
  weight_t cross_process_edges = 0;
  double occupancy = 0;
};

struct AutotuneResult {
  part_t best_ndomains = 0;
  std::vector<AutotuneRow> sweep;
};

/// Sweep candidate domain counts on `mesh` and pick the lowest
/// comm-aware makespan.
AutotuneResult suggest_domain_count(const mesh::Mesh& mesh,
                                    const AutotuneOptions& opts = {});

}  // namespace tamp::core
