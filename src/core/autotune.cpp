#include "core/autotune.hpp"

namespace tamp::core {

AutotuneResult suggest_domain_count(const mesh::Mesh& mesh,
                                    const AutotuneOptions& opts) {
  TAMP_EXPECTS(opts.nprocesses >= 1, "need at least one process");
  TAMP_EXPECTS(opts.max_multiplier >= 1, "multiplier must be positive");

  std::vector<part_t> candidates = opts.candidates;
  if (candidates.empty()) {
    for (part_t mult = 1; mult <= opts.max_multiplier; mult *= 2) {
      const part_t nd = opts.nprocesses * mult;
      if (nd > mesh.num_cells()) break;
      candidates.push_back(nd);
    }
  }
  TAMP_EXPECTS(!candidates.empty(), "no candidate domain counts");

  AutotuneResult result;
  simtime_t best_makespan = 0;
  for (const part_t nd : candidates) {
    RunConfig cfg;
    cfg.strategy = opts.strategy;
    cfg.ndomains = nd;
    cfg.nprocesses = opts.nprocesses;
    cfg.workers_per_process = opts.workers_per_process;
    cfg.comm = opts.comm;
    cfg.task_overhead = opts.task_overhead;
    cfg.seed = opts.seed;
    const RunOutcome with_comm = run_on_mesh(mesh, cfg);

    // Zero-communication reference on the same decomposition: re-simulate
    // rather than re-partition.
    sim::SimOptions ideal;
    ideal.cluster.num_processes = opts.nprocesses;
    ideal.cluster.workers_per_process = opts.workers_per_process;
    ideal.seed = opts.seed;
    const sim::SimResult ideal_sim =
        sim::simulate(with_comm.graph, with_comm.domain_to_process, ideal);

    AutotuneRow row;
    row.ndomains = nd;
    row.makespan = with_comm.makespan();
    row.ideal_makespan = ideal_sim.makespan;
    row.cross_process_edges = with_comm.comm_volume();
    row.occupancy = with_comm.occupancy();
    result.sweep.push_back(row);
    if (result.best_ndomains == 0 || row.makespan < best_makespan) {
      result.best_ndomains = nd;
      best_makespan = row.makespan;
    }
  }
  return result;
}

}  // namespace tamp::core
