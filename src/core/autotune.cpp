#include "core/autotune.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "support/thread_pool.hpp"

namespace tamp::core {

namespace {

RunConfig candidate_config(const AutotuneOptions& opts, part_t nd) {
  RunConfig cfg;
  cfg.strategy = opts.strategy;
  cfg.ndomains = nd;
  cfg.nprocesses = opts.nprocesses;
  cfg.workers_per_process = opts.workers_per_process;
  cfg.comm = opts.comm;
  cfg.task_overhead = opts.task_overhead;
  cfg.seed = opts.seed;
  return cfg;
}

// Scoring consumes a *finished* plan — never the pipeline's shared
// metric gauges, which the overlapped prep of the next candidate is
// rewriting concurrently. Every row is a pure function of the plan and
// the options, so sync and overlap sweeps agree bitwise.
AutotuneRow score_candidate(const mesh::Mesh& /*mesh*/, const RunPlan& plan,
                            const AutotuneOptions& opts, part_t nd) {
  const RunConfig cfg = candidate_config(opts, nd);
  const sim::SimResult with_comm = simulate_plan(plan, cfg);

  // Zero-communication reference on the same decomposition: re-simulate
  // rather than re-partition.
  sim::SimOptions ideal;
  ideal.cluster.num_processes = opts.nprocesses;
  ideal.cluster.workers_per_process = opts.workers_per_process;
  ideal.seed = opts.seed;
  const sim::SimResult ideal_sim =
      sim::simulate(plan.graph, plan.domain_to_process, ideal);

  AutotuneRow row;
  row.ndomains = nd;
  row.makespan = with_comm.makespan;
  row.ideal_makespan = ideal_sim.makespan;
  row.cross_process_edges = cross_process_edges(plan.graph,
                                                plan.domain_to_process);
  row.occupancy = with_comm.occupancy();
  return row;
}

}  // namespace

AutotuneResult suggest_domain_count(const mesh::Mesh& mesh,
                                    const AutotuneOptions& opts) {
  TAMP_EXPECTS(opts.nprocesses >= 1, "need at least one process");
  TAMP_EXPECTS(opts.max_multiplier >= 1, "multiplier must be positive");

  std::vector<part_t> candidates = opts.candidates;
  if (candidates.empty()) {
    for (part_t mult = 1; mult <= opts.max_multiplier; mult *= 2) {
      const part_t nd = opts.nprocesses * mult;
      if (nd > mesh.num_cells()) break;
      candidates.push_back(nd);
    }
  }
  TAMP_EXPECTS(!candidates.empty(), "no candidate domain counts");

  ThreadPool* pool =
      opts.pipeline == PipelineMode::overlap
          ? ThreadPool::shared(std::max(2, resolve_num_threads(opts.threads)))
          : nullptr;

  AutotuneResult result;
  simtime_t best_makespan = 0;
  RunPlan plan = prepare_on_mesh(mesh, candidate_config(opts, candidates[0]));
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    // Overlap: candidate k+1's decomposition + task graph build on the
    // pool while candidate k is scored here.
    ThreadPool::TaskHandle handle;
    std::shared_ptr<RunPlan> next;
    if (pool != nullptr && k + 1 < candidates.size()) {
      next = std::make_shared<RunPlan>();
      handle = pool->submit_background([&mesh, &opts, &candidates, next, k] {
        *next = prepare_on_mesh(mesh,
                                candidate_config(opts, candidates[k + 1]));
      });
    }

    AutotuneRow row;
    try {
      row = score_candidate(mesh, plan, opts, candidates[k]);
    } catch (...) {
      if (handle != nullptr) {
        try {
          pool->wait(handle);
        } catch (...) {
        }
      }
      throw;
    }
    result.sweep.push_back(row);
    if (result.best_ndomains == 0 || row.makespan < best_makespan) {
      result.best_ndomains = candidates[k];
      best_makespan = row.makespan;
    }

    if (k + 1 < candidates.size()) {
      if (handle != nullptr) {
        pool->wait(handle);
        plan = std::move(*next);
      } else {
        plan = prepare_on_mesh(mesh,
                               candidate_config(opts, candidates[k + 1]));
      }
    }
  }
  return result;
}

}  // namespace tamp::core
