// High-level experiment pipeline: mesh → partition → task graph → schedule.
//
// Two entry points live here:
//
//  * run_on_mesh() — the one-shot pipeline the paper figures are written
//    against: configure a RunConfig, read the outcome (with
//    prepare_on_mesh()/simulate_plan() as its two stages, separately
//    callable so callers can overlap preparation with scoring).
//
//  * run_iteration_pipeline() — the asynchronous two-stage *iteration*
//    pipeline: a real solver advances iteration i on the threaded
//    runtime while iteration i+1's preparation (temporal-level evolve →
//    incremental repartition → task-graph build → runtime bookkeeping)
//    runs as a background task on the work-stealing pool, handing over
//    immutable IterationSnapshots through a depth-1 queue. Overlapped
//    mode is bitwise identical to sync mode at every thread count; see
//    DESIGN.md "Asynchronous pipeline" for the ownership and determinism
//    contract.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mesh/evolve.hpp"
#include "mesh/generators.hpp"
#include "partition/incremental.hpp"
#include "partition/strategy.hpp"
#include "runtime/runtime.hpp"
#include "sim/doctor.hpp"
#include "sim/simulate.hpp"
#include "taskgraph/generate.hpp"
#include "taskgraph/patch.hpp"

namespace tamp::partition {
class DecompositionCache;
}  // namespace tamp::partition

namespace tamp::solver {
class EulerSolver;
class TransportSolver;
}  // namespace tamp::solver

namespace tamp::core {

/// Everything needed to turn a mesh into a simulated execution.
struct RunConfig {
  partition::Strategy strategy = partition::Strategy::sc_oc;
  part_t ndomains = 16;
  part_t nprocesses = 4;
  /// Workers per process; 0 = unbounded (Fig 6 mode).
  int workers_per_process = 4;
  partition::DomainMapping mapping = partition::DomainMapping::block;
  sim::Policy policy = sim::Policy::eager_fifo;
  taskgraph::CostModel cost;
  sim::CommModel comm;  ///< zero by default (idealised FLUSIM)
  simtime_t task_overhead = 0;  ///< per-task runtime cost (see SimOptions)
  /// Run the §IX fragment-repair post-processing on the decomposition
  /// before generating the task graph.
  bool repair_fragments = false;
  int num_iterations = 1;
  double partition_tolerance = 0.05;
  /// Worker threads for the decomposition (partition::Options::num_threads):
  /// >0 = that many, 0 = TAMP_PARTITION_THREADS env (default serial). The
  /// decomposition is bit-identical at every thread count.
  int partition_threads = 0;
  std::uint64_t seed = 1;
};

/// Full outcome of one pipeline run.
struct RunOutcome {
  partition::DomainDecomposition decomposition;
  taskgraph::TaskGraph graph;
  std::vector<part_t> domain_to_process;
  sim::SimResult sim;

  [[nodiscard]] simtime_t makespan() const { return sim.makespan; }
  [[nodiscard]] double occupancy() const { return sim.occupancy(); }
  /// Cross-process communication estimate (paper Fig 11b): the number of
  /// task dependency edges whose endpoints run on different processes.
  [[nodiscard]] weight_t comm_volume() const;
};

/// Run the pipeline on an existing mesh (reuse the mesh across strategies
/// to compare them on identical input, as all paper figures do).
RunOutcome run_on_mesh(const mesh::Mesh& mesh, const RunConfig& config);

/// The preparation half of run_on_mesh(): decomposition (+ optional
/// repair), task graph, process map — everything except the simulation.
/// Deterministic in (mesh, config) alone, so it can run concurrently
/// with simulate_plan() calls on other plans (autotune overlaps the two).
struct RunPlan {
  partition::DomainDecomposition decomposition;
  taskgraph::TaskGraph graph;
  std::vector<part_t> domain_to_process;
};
RunPlan prepare_on_mesh(const mesh::Mesh& mesh, const RunConfig& config);

/// The scoring half: simulate a prepared plan under `config`'s cluster /
/// policy / communication knobs.
sim::SimResult simulate_plan(const RunPlan& plan, const RunConfig& config);

/// Dependency edges whose endpoints run on different processes (the
/// paper's Fig 11b communication estimate; RunOutcome::comm_volume()).
[[nodiscard]] weight_t cross_process_edges(
    const taskgraph::TaskGraph& graph,
    const std::vector<part_t>& domain_to_process);

/// One-line human summary ("SC_OC: makespan=…, occupancy=…%").
std::string summarize(const RunOutcome& outcome);

// --- asynchronous iteration pipeline ---------------------------------------

enum class PipelineMode { sync, overlap };
[[nodiscard]] const char* to_string(PipelineMode m);
/// Parse "sync" | "overlap".
PipelineMode parse_pipeline_mode(const std::string& name);

/// How prep builds each iteration's task graph.
///
///   off       — generate from scratch every iteration (the pre-service
///               behaviour; also the reference the others must match).
///   automatic — diff-based patching (taskgraph::GraphPatcher) with a
///               full-rebuild fallback above the dirty-fraction
///               threshold. Bit-identical to `off` by construction.
///   oracle    — automatic plus the per-iteration equivalence oracle:
///               every patched graph is checked against a from-scratch
///               rebuild (invariant_error on divergence). Testing /
///               debugging mode; costs a full rebuild per iteration.
enum class PatchPolicy { off, automatic, oracle };
[[nodiscard]] const char* to_string(PatchPolicy p);
/// Parse "off" | "auto" | "oracle".
PatchPolicy parse_patch_policy(const std::string& name);

/// Seeded stage-boundary fault injection: throw a runtime_failure at the
/// entry of one pipeline stage of one iteration ("taskgraph:2" = the
/// task-graph build of snapshot 2). The test hook proving the pipeline
/// drains, rethrows exactly once, and leaks no tasks.
struct PipelineFault {
  enum class Stage : std::uint8_t { none, evolve, repartition, taskgraph,
                                    solve };
  Stage stage = Stage::none;
  int iteration = -1;
};
[[nodiscard]] const char* to_string(PipelineFault::Stage s);
/// Parse "stage:iteration" (stage ∈ evolve|repartition|taskgraph|solve).
PipelineFault parse_pipeline_fault(const std::string& spec);
/// The TAMP_PIPELINE_FAULT environment hook; Stage::none when unset.
PipelineFault pipeline_fault_from_env();

/// Everything iteration i's solve needs, frozen by the prep stage —
/// published once, then immutable. The fingerprint seals levels,
/// domain assignment and graph shape at publish time; every consumer
/// re-verifies it, so a leaked mutable reference that changes any of
/// them is caught at the next stage boundary (invariant_error).
struct IterationSnapshot {
  int iteration = 0;
  std::vector<level_t> levels;  ///< temporal levels this iteration runs at
  partition::DomainDecomposition decomposition;
  taskgraph::TaskGraph graph;
  std::shared_ptr<const taskgraph::ClassMap> classes;
  std::vector<part_t> domain_to_process;
  runtime::PreparedGraph prepared;  ///< launch bookkeeping, pre-derived
  /// Prep provenance (zero for snapshot 0, which evolves nothing).
  mesh::EvolveStats evolve;
  partition::IncrementalReport repartition;
  /// How this snapshot's graph was produced (patched vs rebuilt) and at
  /// what dirty fraction; default-initialised when PatchPolicy::off.
  taskgraph::PatchStats patch;
  /// Per-task dirty mask from the patcher (empty when PatchPolicy::off
  /// or for full rebuilds of snapshot 0): the region the race verifier
  /// re-certifies on patched graphs (verify::check_races_region).
  std::vector<char> dirty_tasks;
  std::uint64_t fingerprint = 0;  ///< seal over levels/assignment/graph
};

struct IterationPipelineConfig {
  PipelineMode mode = PipelineMode::sync;
  int num_iterations = 4;
  /// Per-iteration temporal-level drift fed to mesh::evolve_levels
  /// (paper §III-A: levels evolve slowly — keep this small).
  double drift = 0.05;
  partition::Strategy strategy = partition::Strategy::mc_tl;
  part_t ndomains = 16;
  part_t nprocesses = 1;
  int workers_per_process = 4;
  partition::DomainMapping mapping = partition::DomainMapping::block;
  double partition_tolerance = 0.05;
  /// Threads for the prep pool and the initial decomposition; 0 =
  /// TAMP_PARTITION_THREADS env (overlap mode floors the pool at 2 so a
  /// worker exists to run prep behind the driver's solve).
  int threads = 0;
  std::uint64_t seed = 1;
  /// Forwarded to the solve stage's runtime config (adversarial-schedule
  /// sweeps of the overlapped pipeline).
  runtime::AdversarialSchedule adversarial;
  PipelineFault fault;  ///< Stage::none = no injection
  /// Task-graph production policy (see PatchPolicy). `automatic` is safe
  /// as the default because patched graphs are bit-identical to rebuilt
  /// ones — the cross-mode determinism gates hold regardless.
  PatchPolicy patch = PatchPolicy::automatic;
  /// Dirty-cell fraction above which a patch falls back to a rebuild.
  double patch_threshold = 0.05;
  /// Optional shared decomposition cache for snapshot 0's from-scratch
  /// partition (the repartitioning service's warm path). May be shared
  /// by concurrent pipelines; nullptr = always compute.
  partition::DecompositionCache* cache = nullptr;
};

/// Per-iteration stage timeline (seconds since pipeline start).
struct PipelineIterationStats {
  int iteration = 0;
  double prep_start = 0, prep_end = 0;    ///< this snapshot's prep stage
  double solve_start = 0, solve_end = 0;  ///< this snapshot's solve stage
  index_t cells_changed = 0;    ///< evolve drift (0 for snapshot 0)
  index_t migrated_cells = 0;   ///< incremental repartition movement
  double max_domain_migration = 0;  ///< worst per-domain migrated fraction
  double dirty_fraction = 0;    ///< cells_changed / total cells
  bool graph_patched = false;   ///< task graph diff-patched (vs rebuilt)
  bool decomposition_reused = false;  ///< zero drift: previous assignment
                                      ///< reused verbatim, no repartition
};

struct PipelineRunReport {
  std::vector<PipelineIterationStats> iterations;
  sim::StageOverlapReport overlap;
};

/// How the pipeline drives a solver, expressed as hooks so Euler and
/// transport (and tests' instrumented wrappers) share one driver:
/// make_body binds a snapshot's pre-built (graph, classes) to the
/// solver — called on the driver thread *after* the snapshot's levels
/// were applied to the live mesh; note_complete advances the solver
/// clock; observer (optional) runs after each iteration's solve with the
/// consumed snapshot and the runtime report.
struct SolverHooks {
  std::function<runtime::TaskBody(const IterationSnapshot&)> make_body;
  std::function<void()> note_complete;
  std::function<void(const IterationSnapshot&,
                     const runtime::ExecutionReport&)>
      observer;
};

/// Run `config.num_iterations` solver iterations over an evolving mesh.
/// `live_mesh` is the mesh the solver is bound to; its temporal levels
/// must be assigned (solver assign_temporal_levels()) before the call.
/// The pipeline keeps a private planning copy: prep stages mutate only
/// the copy, the live mesh changes only at iteration boundaries on the
/// driver thread (set_cell_levels from the consumed snapshot), so
/// overlap mode shares no mutable state between concurrent stages and
/// is bitwise identical to sync mode by construction.
///
/// Exceptions: the first stage failure (or injected fault) cancels
/// outstanding prep at the next stage boundary, drains the pool, and is
/// rethrown exactly once; an earlier iteration's solve failure wins over
/// a concurrent later prep failure.
PipelineRunReport run_iteration_pipeline(mesh::Mesh& live_mesh,
                                         const IterationPipelineConfig& config,
                                         const SolverHooks& hooks);

/// Standard hooks for the two solvers (tests/examples/benches). The
/// optional `wrap_body` decorates each iteration's task body (the race
/// verifier's instrument()).
SolverHooks euler_pipeline_hooks(
    solver::EulerSolver& solver,
    std::function<runtime::TaskBody(runtime::TaskBody,
                                    const IterationSnapshot&)>
        wrap_body = nullptr);
SolverHooks transport_pipeline_hooks(
    solver::TransportSolver& solver,
    std::function<runtime::TaskBody(runtime::TaskBody,
                                    const IterationSnapshot&)>
        wrap_body = nullptr);

}  // namespace tamp::core
