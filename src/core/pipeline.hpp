// High-level experiment pipeline: mesh → partition → task graph → schedule.
//
// This is the library's main entry point for users reproducing the
// paper's experiments (and the API all examples/benches are written
// against): configure a RunConfig, call run_on_mesh(), read the outcome.
#pragma once

#include <string>

#include "mesh/generators.hpp"
#include "partition/strategy.hpp"
#include "sim/simulate.hpp"
#include "taskgraph/generate.hpp"

namespace tamp::core {

/// Everything needed to turn a mesh into a simulated execution.
struct RunConfig {
  partition::Strategy strategy = partition::Strategy::sc_oc;
  part_t ndomains = 16;
  part_t nprocesses = 4;
  /// Workers per process; 0 = unbounded (Fig 6 mode).
  int workers_per_process = 4;
  partition::DomainMapping mapping = partition::DomainMapping::block;
  sim::Policy policy = sim::Policy::eager_fifo;
  taskgraph::CostModel cost;
  sim::CommModel comm;  ///< zero by default (idealised FLUSIM)
  simtime_t task_overhead = 0;  ///< per-task runtime cost (see SimOptions)
  /// Run the §IX fragment-repair post-processing on the decomposition
  /// before generating the task graph.
  bool repair_fragments = false;
  int num_iterations = 1;
  double partition_tolerance = 0.05;
  /// Worker threads for the decomposition (partition::Options::num_threads):
  /// >0 = that many, 0 = TAMP_PARTITION_THREADS env (default serial). The
  /// decomposition is bit-identical at every thread count.
  int partition_threads = 0;
  std::uint64_t seed = 1;
};

/// Full outcome of one pipeline run.
struct RunOutcome {
  partition::DomainDecomposition decomposition;
  taskgraph::TaskGraph graph;
  std::vector<part_t> domain_to_process;
  sim::SimResult sim;

  [[nodiscard]] simtime_t makespan() const { return sim.makespan; }
  [[nodiscard]] double occupancy() const { return sim.occupancy(); }
  /// Cross-process communication estimate (paper Fig 11b): the number of
  /// task dependency edges whose endpoints run on different processes.
  [[nodiscard]] weight_t comm_volume() const;
};

/// Run the pipeline on an existing mesh (reuse the mesh across strategies
/// to compare them on identical input, as all paper figures do).
RunOutcome run_on_mesh(const mesh::Mesh& mesh, const RunConfig& config);

/// One-line human summary ("SC_OC: makespan=…, occupancy=…%").
std::string summarize(const RunOutcome& outcome);

}  // namespace tamp::core
