#include "core/pipeline.hpp"

#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/repair.hpp"

namespace tamp::core {

weight_t RunOutcome::comm_volume() const {
  // The paper's estimate (§VI, Fig 11b): "a communication is considered
  // to be an edge of the task graph connecting two nodes whose domains
  // are distributed across two different processes".
  weight_t edges = 0;
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const part_t pt =
        domain_to_process[static_cast<std::size_t>(graph.task(t).domain)];
    for (const index_t s : graph.successors(t)) {
      const part_t ps =
          domain_to_process[static_cast<std::size_t>(graph.task(s).domain)];
      if (ps != pt) ++edges;
    }
  }
  return edges;
}

RunOutcome run_on_mesh(const mesh::Mesh& mesh, const RunConfig& config) {
  TAMP_EXPECTS(config.ndomains >= config.nprocesses,
               "need at least one domain per process");
  TAMP_TRACE_SCOPE("pipeline/run_on_mesh");
  RunOutcome out;

  {
    TAMP_TRACE_SCOPE("pipeline/partition");
    partition::StrategyOptions sopts;
    sopts.strategy = config.strategy;
    sopts.ndomains = config.ndomains;
    sopts.nprocesses = config.nprocesses;
    sopts.partitioner.tolerance = config.partition_tolerance;
    sopts.partitioner.seed = config.seed;
    sopts.partitioner.num_threads = config.partition_threads;
    out.decomposition = partition::decompose(mesh, sopts);
  }
  if (config.repair_fragments) {
    TAMP_TRACE_SCOPE("pipeline/repair");
    const auto g = partition::build_strategy_graph(
        mesh, config.strategy == partition::Strategy::hybrid
                  ? partition::Strategy::mc_tl
                  : config.strategy);
    partition::repair_fragments(g, out.decomposition.domain_of_cell,
                                config.ndomains);
    partition::update_census(mesh, out.decomposition);
  }
  TAMP_METRIC_GAUGE_SET("pipeline.level_imbalance",
                        out.decomposition.level_imbalance());
  TAMP_METRIC_GAUGE_SET("pipeline.cost_imbalance",
                        out.decomposition.cost_imbalance());
  TAMP_METRIC_GAUGE_SET("pipeline.edge_cut", out.decomposition.edge_cut);

  {
    TAMP_TRACE_SCOPE("pipeline/taskgraph");
    taskgraph::GenerateOptions gopts;
    gopts.cost = config.cost;
    gopts.num_iterations = config.num_iterations;
    out.graph = taskgraph::generate_task_graph(
        mesh, out.decomposition.domain_of_cell, config.ndomains, gopts);
  }

  {
    TAMP_TRACE_SCOPE("pipeline/map");
    out.domain_to_process = partition::map_domains_to_processes(
        config.ndomains, config.nprocesses, config.mapping);
  }

  {
    TAMP_TRACE_SCOPE("pipeline/simulate");
    sim::SimOptions simopts;
    simopts.cluster.num_processes = config.nprocesses;
    simopts.cluster.workers_per_process = config.workers_per_process;
    simopts.policy = config.policy;
    simopts.comm = config.comm;
    simopts.task_overhead = config.task_overhead;
    simopts.seed = config.seed;
    out.sim = sim::simulate(out.graph, out.domain_to_process, simopts);
  }
  TAMP_METRIC_GAUGE_SET("pipeline.makespan", out.makespan());
  TAMP_METRIC_GAUGE_SET("pipeline.occupancy", out.occupancy());
  return out;
}

std::string summarize(const RunOutcome& outcome) {
  std::ostringstream os;
  os.precision(4);
  os << "makespan=" << outcome.makespan()
     << " occupancy=" << outcome.occupancy() * 100.0 << "%"
     << " tasks=" << outcome.graph.num_tasks()
     << " deps=" << outcome.graph.num_dependencies()
     << " cut=" << outcome.decomposition.edge_cut
     << " cost_imb=" << outcome.decomposition.cost_imbalance()
     << " level_imb=" << outcome.decomposition.level_imbalance();
  return os.str();
}

}  // namespace tamp::core
