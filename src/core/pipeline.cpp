#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/cache.hpp"
#include "partition/repair.hpp"
#include "solver/euler.hpp"
#include "solver/transport.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace tamp::core {

weight_t cross_process_edges(const taskgraph::TaskGraph& graph,
                             const std::vector<part_t>& domain_to_process) {
  // The paper's estimate (§VI, Fig 11b): "a communication is considered
  // to be an edge of the task graph connecting two nodes whose domains
  // are distributed across two different processes".
  weight_t edges = 0;
  for (index_t t = 0; t < graph.num_tasks(); ++t) {
    const part_t pt =
        domain_to_process[static_cast<std::size_t>(graph.task(t).domain)];
    for (const index_t s : graph.successors(t)) {
      const part_t ps =
          domain_to_process[static_cast<std::size_t>(graph.task(s).domain)];
      if (ps != pt) ++edges;
    }
  }
  return edges;
}

weight_t RunOutcome::comm_volume() const {
  return cross_process_edges(graph, domain_to_process);
}

RunPlan prepare_on_mesh(const mesh::Mesh& mesh, const RunConfig& config) {
  TAMP_EXPECTS(config.ndomains >= config.nprocesses,
               "need at least one domain per process");
  TAMP_TRACE_SCOPE("pipeline/prepare_on_mesh");
  RunPlan plan;

  {
    TAMP_TRACE_SCOPE("pipeline/partition");
    partition::StrategyOptions sopts;
    sopts.strategy = config.strategy;
    sopts.ndomains = config.ndomains;
    sopts.nprocesses = config.nprocesses;
    sopts.partitioner.tolerance = config.partition_tolerance;
    sopts.partitioner.seed = config.seed;
    sopts.partitioner.num_threads = config.partition_threads;
    plan.decomposition = partition::decompose(mesh, sopts);
  }
  if (config.repair_fragments) {
    TAMP_TRACE_SCOPE("pipeline/repair");
    const auto g = partition::build_strategy_graph(
        mesh, config.strategy == partition::Strategy::hybrid
                  ? partition::Strategy::mc_tl
                  : config.strategy);
    partition::repair_fragments(g, plan.decomposition.domain_of_cell,
                                config.ndomains);
    partition::update_census(mesh, plan.decomposition);
  }
  TAMP_METRIC_GAUGE_SET("pipeline.level_imbalance",
                        plan.decomposition.level_imbalance());
  TAMP_METRIC_GAUGE_SET("pipeline.cost_imbalance",
                        plan.decomposition.cost_imbalance());
  TAMP_METRIC_GAUGE_SET("pipeline.edge_cut", plan.decomposition.edge_cut);

  {
    TAMP_TRACE_SCOPE("pipeline/taskgraph");
    taskgraph::GenerateOptions gopts;
    gopts.cost = config.cost;
    gopts.num_iterations = config.num_iterations;
    plan.graph = taskgraph::generate_task_graph(
        mesh, plan.decomposition.domain_of_cell, config.ndomains, gopts);
  }

  {
    TAMP_TRACE_SCOPE("pipeline/map");
    plan.domain_to_process = partition::map_domains_to_processes(
        config.ndomains, config.nprocesses, config.mapping);
  }
  return plan;
}

sim::SimResult simulate_plan(const RunPlan& plan, const RunConfig& config) {
  TAMP_TRACE_SCOPE("pipeline/simulate");
  sim::SimOptions simopts;
  simopts.cluster.num_processes = config.nprocesses;
  simopts.cluster.workers_per_process = config.workers_per_process;
  simopts.policy = config.policy;
  simopts.comm = config.comm;
  simopts.task_overhead = config.task_overhead;
  simopts.seed = config.seed;
  return sim::simulate(plan.graph, plan.domain_to_process, simopts);
}

RunOutcome run_on_mesh(const mesh::Mesh& mesh, const RunConfig& config) {
  TAMP_TRACE_SCOPE("pipeline/run_on_mesh");
  RunPlan plan = prepare_on_mesh(mesh, config);
  RunOutcome out;
  out.sim = simulate_plan(plan, config);
  out.decomposition = std::move(plan.decomposition);
  out.graph = std::move(plan.graph);
  out.domain_to_process = std::move(plan.domain_to_process);
  TAMP_METRIC_GAUGE_SET("pipeline.makespan", out.makespan());
  TAMP_METRIC_GAUGE_SET("pipeline.occupancy", out.occupancy());
  return out;
}

std::string summarize(const RunOutcome& outcome) {
  std::ostringstream os;
  os.precision(4);
  os << "makespan=" << outcome.makespan()
     << " occupancy=" << outcome.occupancy() * 100.0 << "%"
     << " tasks=" << outcome.graph.num_tasks()
     << " deps=" << outcome.graph.num_dependencies()
     << " cut=" << outcome.decomposition.edge_cut
     << " cost_imb=" << outcome.decomposition.cost_imbalance()
     << " level_imb=" << outcome.decomposition.level_imbalance();
  return os.str();
}

// --- asynchronous iteration pipeline ---------------------------------------

const char* to_string(PipelineMode m) {
  switch (m) {
    case PipelineMode::sync: return "sync";
    case PipelineMode::overlap: return "overlap";
  }
  return "?";
}

PipelineMode parse_pipeline_mode(const std::string& name) {
  if (name == "sync") return PipelineMode::sync;
  if (name == "overlap") return PipelineMode::overlap;
  throw precondition_error("unknown pipeline mode '" + name +
                           "' (expected sync | overlap)");
}

const char* to_string(PatchPolicy p) {
  switch (p) {
    case PatchPolicy::off: return "off";
    case PatchPolicy::automatic: return "auto";
    case PatchPolicy::oracle: return "oracle";
  }
  return "?";
}

PatchPolicy parse_patch_policy(const std::string& name) {
  if (name == "off") return PatchPolicy::off;
  if (name == "auto") return PatchPolicy::automatic;
  if (name == "oracle") return PatchPolicy::oracle;
  throw precondition_error("unknown patch policy '" + name +
                           "' (expected off | auto | oracle)");
}

const char* to_string(PipelineFault::Stage s) {
  switch (s) {
    case PipelineFault::Stage::none: return "none";
    case PipelineFault::Stage::evolve: return "evolve";
    case PipelineFault::Stage::repartition: return "repartition";
    case PipelineFault::Stage::taskgraph: return "taskgraph";
    case PipelineFault::Stage::solve: return "solve";
  }
  return "?";
}

PipelineFault parse_pipeline_fault(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  TAMP_EXPECTS(colon != std::string::npos && colon > 0 &&
                   colon + 1 < spec.size(),
               "pipeline fault spec must be stage:iteration");
  const std::string stage = spec.substr(0, colon);
  PipelineFault fault;
  if (stage == "evolve") fault.stage = PipelineFault::Stage::evolve;
  else if (stage == "repartition")
    fault.stage = PipelineFault::Stage::repartition;
  else if (stage == "taskgraph") fault.stage = PipelineFault::Stage::taskgraph;
  else if (stage == "solve") fault.stage = PipelineFault::Stage::solve;
  else
    throw precondition_error(
        "unknown pipeline fault stage '" + stage +
        "' (expected evolve | repartition | taskgraph | solve)");
  const std::string iter = spec.substr(colon + 1);
  char* tail = nullptr;
  const long v = std::strtol(iter.c_str(), &tail, 10);
  TAMP_EXPECTS(tail != iter.c_str() && *tail == '\0' && v >= 0,
               "pipeline fault iteration must be a non-negative integer");
  fault.iteration = static_cast<int>(v);
  return fault;
}

PipelineFault pipeline_fault_from_env() {
  const char* env = std::getenv("TAMP_PIPELINE_FAULT");
  if (env == nullptr || *env == '\0') return {};
  return parse_pipeline_fault(env);
}

namespace {

void maybe_fault(const PipelineFault& fault, PipelineFault::Stage stage,
                 int iteration) {
  if (fault.stage == stage && fault.iteration == iteration)
    throw runtime_failure(std::string("injected pipeline fault at ") +
                          to_string(stage) + ":" + std::to_string(iteration));
}

// FNV-1a (support/hash.hpp), folded over everything a snapshot's
// consumers depend on.
std::uint64_t snapshot_fingerprint(const IterationSnapshot& s) {
  std::uint64_t h = kFnv1aOffset;
  fnv1a_span(h, s.levels.data(), s.levels.size());
  fnv1a_span(h, s.decomposition.domain_of_cell.data(),
             s.decomposition.domain_of_cell.size());
  fnv1a_span(h, s.domain_to_process.data(), s.domain_to_process.size());
  fnv1a_span(h, s.prepared.process_of.data(), s.prepared.process_of.size());
  fnv1a_span(h, s.prepared.initial_pending.data(),
             s.prepared.initial_pending.size());
  const index_t ntasks = s.graph.num_tasks();
  fnv1a_span(h, &ntasks, 1);
  for (index_t t = 0; t < ntasks; ++t) {
    const taskgraph::Task& task = s.graph.task(t);
    fnv1a_span(h, &task.domain, 1);
    fnv1a_span(h, &task.level, 1);
    fnv1a_span(h, &task.subiteration, 1);
    for (const index_t succ : s.graph.successors(t)) fnv1a_span(h, &succ, 1);
  }
  return h;
}

void verify_snapshot(const IterationSnapshot& s, const char* where) {
  if (snapshot_fingerprint(s) != s.fingerprint)
    throw invariant_error("pipeline snapshot " +
                          std::to_string(s.iteration) +
                          " was mutated after publication (detected at " +
                          where +
                          ") — snapshots are immutable between stages");
}

/// State shared by prep stages across the run: the planning mesh (the
/// only mesh prep ever mutates — the live mesh belongs to the solve
/// stage) and the fixed strategy-graph flavour.
struct PrepContext {
  mesh::Mesh planning;
  partition::Strategy graph_strategy;
  /// Incremental task-graph patcher (PatchPolicy != off). Owned by the
  /// prep stream: the depth-1 handoff guarantees applies never overlap.
  std::unique_ptr<taskgraph::GraphPatcher> patcher;
};

/// Shared tail of the taskgraph stage: produce (graph, classes, patch
/// provenance) for a snapshot, either from scratch or via the patcher.
void build_snapshot_graph(PrepContext& ctx,
                          const IterationPipelineConfig& config,
                          IterationSnapshot& snap,
                          PipelineIterationStats& stats) {
  auto classes = std::make_shared<taskgraph::ClassMap>();
  if (config.patch == PatchPolicy::off) {
    snap.graph = taskgraph::generate_task_graph(
        ctx.planning, snap.decomposition.domain_of_cell, config.ndomains, {},
        classes.get());
  } else {
    if (ctx.patcher == nullptr) {
      taskgraph::GraphPatcher::Options popts;
      popts.max_dirty_fraction = config.patch_threshold;
      popts.oracle = config.patch == PatchPolicy::oracle;
      ctx.patcher = std::make_unique<taskgraph::GraphPatcher>(
          ctx.planning, snap.decomposition.domain_of_cell, config.ndomains,
          popts);
    } else {
      ctx.patcher->apply(ctx.planning, snap.decomposition.domain_of_cell);
    }
    // Copying the patcher's graph/ClassMap is memcpy-speed — far cheaper
    // than the classification + sort a rebuild would redo — and keeps
    // the published snapshot immutable while the patcher keeps evolving.
    snap.graph = ctx.patcher->graph();
    *classes = ctx.patcher->classes();
    snap.patch = ctx.patcher->last_stats();
    snap.dirty_tasks = ctx.patcher->dirty_tasks();
    stats.graph_patched = snap.patch.patched;
  }
  snap.classes = std::move(classes);
  snap.domain_to_process = partition::map_domains_to_processes(
      config.ndomains, config.nprocesses, config.mapping);
  snap.prepared = runtime::prepare_execution(snap.graph,
                                             snap.domain_to_process,
                                             config.nprocesses);
}

std::shared_ptr<const IterationSnapshot> prep_snapshot(
    PrepContext& ctx, const IterationPipelineConfig& config,
    const IterationSnapshot& prev, const int iter,
    const std::atomic<bool>& cancel, const Stopwatch& clock,
    PipelineIterationStats& stats) {
  TAMP_TRACE_SCOPE("pipeline/prep");
  stats.iteration = iter;
  stats.prep_start = clock.seconds();
  // Cancellation (a concurrent solve failure) is checked at every stage
  // boundary; an abandoned prep publishes nothing.
  if (cancel.load(std::memory_order_acquire)) return nullptr;
  maybe_fault(config.fault, PipelineFault::Stage::evolve, iter);
  verify_snapshot(prev, "prep entry");

  auto snap = std::make_shared<IterationSnapshot>();
  snap->iteration = iter;
  {
    TAMP_TRACE_SCOPE("pipeline/evolve");
    // Per-iteration stream: the drift drawn for iteration i never
    // depends on how many Rng draws earlier iterations made.
    Rng rng(mix_seed(config.seed, 0x9E3779B97F4A7C15ULL,
                     static_cast<std::uint64_t>(iter)));
    snap->evolve = mesh::evolve_levels(ctx.planning, config.drift, rng);
    snap->levels = ctx.planning.cell_levels();
  }
  stats.cells_changed = snap->evolve.cells_changed;

  if (cancel.load(std::memory_order_acquire)) return nullptr;
  maybe_fault(config.fault, PipelineFault::Stage::repartition, iter);
  stats.dirty_fraction =
      static_cast<double>(snap->evolve.cells_changed) /
      static_cast<double>(std::max<index_t>(ctx.planning.num_cells(), 1));
  obs::gauge("partition.dirty_fraction").set(stats.dirty_fraction);
  if (snap->evolve.cells_changed == 0) {
    TAMP_TRACE_SCOPE("pipeline/repartition");
    // Zero drift: no vertex weight changed, so the previous assignment
    // is reused verbatim — no strategy graph, no repartition run.
    snap->decomposition = prev.decomposition;
    snap->repartition = {};
    snap->repartition.cut_before = snap->repartition.cut_after =
        prev.decomposition.edge_cut;
    snap->repartition.reused_verbatim = true;
    stats.decomposition_reused = true;
    stats.migrated_cells = 0;
  } else {
    TAMP_TRACE_SCOPE("pipeline/repartition");
    const graph::Csr g =
        partition::build_strategy_graph(ctx.planning, ctx.graph_strategy);
    std::vector<part_t> part = prev.decomposition.domain_of_cell;
    partition::IncrementalOptions iopts;
    iopts.tolerance = config.partition_tolerance;
    iopts.seed = mix_seed(config.seed, 0xDA942042E4DD58B5ULL,
                          static_cast<std::uint64_t>(iter));
    iopts.dirty_vertices = snap->evolve.cells_changed;
    snap->repartition = partition::incremental_repartition(
        g, part, config.ndomains, iopts);
    // Migration census on the worker's scratch arena: per-domain counts
    // of cells that left their old domain, against the old population —
    // the worst per-domain fraction is what a distributed run would
    // actually ship from one node.
    ScratchArena& arena = thread_scratch_arena();
    arena.reset();
    const auto nd = static_cast<std::size_t>(config.ndomains);
    index_t* moved = arena.alloc<index_t>(nd);
    index_t* total = arena.alloc<index_t>(nd);
    std::fill(moved, moved + nd, index_t{0});
    std::fill(total, total + nd, index_t{0});
    const std::vector<part_t>& old = prev.decomposition.domain_of_cell;
    for (std::size_t c = 0; c < part.size(); ++c) {
      const auto od = static_cast<std::size_t>(old[c]);
      ++total[od];
      if (part[c] != old[c]) ++moved[od];
    }
    for (std::size_t d = 0; d < nd; ++d)
      if (total[d] > 0)
        stats.max_domain_migration =
            std::max(stats.max_domain_migration,
                     static_cast<double>(moved[d]) /
                         static_cast<double>(total[d]));
    stats.migrated_cells = snap->repartition.migrated_vertices;
    snap->decomposition.domain_of_cell = std::move(part);
    snap->decomposition.ndomains = config.ndomains;
    partition::update_census(ctx.planning, snap->decomposition);
  }

  if (cancel.load(std::memory_order_acquire)) return nullptr;
  maybe_fault(config.fault, PipelineFault::Stage::taskgraph, iter);
  {
    TAMP_TRACE_SCOPE("pipeline/taskgraph");
    build_snapshot_graph(ctx, config, *snap, stats);
  }
  snap->fingerprint = snapshot_fingerprint(*snap);
  stats.prep_end = clock.seconds();
  return snap;
}

std::shared_ptr<const IterationSnapshot> initial_snapshot(
    PrepContext& ctx, const IterationPipelineConfig& config,
    const int partition_threads, const Stopwatch& clock,
    PipelineIterationStats& stats) {
  TAMP_TRACE_SCOPE("pipeline/prep");
  stats.iteration = 0;
  stats.prep_start = clock.seconds();
  // Snapshot 0 partitions from scratch — no previous assignment to evolve
  // from — but walks the same fault schedule so every stage × iteration
  // pair is injectable.
  maybe_fault(config.fault, PipelineFault::Stage::evolve, 0);
  auto snap = std::make_shared<IterationSnapshot>();
  snap->iteration = 0;
  snap->levels = ctx.planning.cell_levels();

  maybe_fault(config.fault, PipelineFault::Stage::repartition, 0);
  {
    TAMP_TRACE_SCOPE("pipeline/partition");
    partition::StrategyOptions sopts;
    sopts.strategy = config.strategy;
    sopts.ndomains = config.ndomains;
    sopts.nprocesses = config.nprocesses;
    sopts.partitioner.tolerance = config.partition_tolerance;
    sopts.partitioner.seed = config.seed;
    sopts.partitioner.num_threads = partition_threads;
    if (config.cache != nullptr) {
      // Service warm path: a mesh with this content + these parameters
      // was decomposed before (possibly by a concurrent pipeline) — the
      // cache hit replaces the whole multilevel run with a hash lookup.
      const auto cached =
          partition::decompose_cached(ctx.planning, sopts, config.cache);
      snap->decomposition = cached->decomposition;
    } else {
      snap->decomposition = partition::decompose(ctx.planning, sopts);
    }
  }

  maybe_fault(config.fault, PipelineFault::Stage::taskgraph, 0);
  {
    TAMP_TRACE_SCOPE("pipeline/taskgraph");
    build_snapshot_graph(ctx, config, *snap, stats);
  }
  snap->fingerprint = snapshot_fingerprint(*snap);
  stats.prep_end = clock.seconds();
  return snap;
}

double interval_overlap(double a0, double a1, double b0, double b1) {
  const double lo = std::max(a0, b0);
  const double hi = std::min(a1, b1);
  return hi > lo ? hi - lo : 0.0;
}

}  // namespace

PipelineRunReport run_iteration_pipeline(mesh::Mesh& live_mesh,
                                         const IterationPipelineConfig& config,
                                         const SolverHooks& hooks) {
  TAMP_EXPECTS(config.num_iterations >= 1, "need at least one iteration");
  TAMP_EXPECTS(config.ndomains >= config.nprocesses,
               "need at least one domain per process");
  TAMP_EXPECTS(config.drift >= 0 && config.drift <= 1,
               "drift is a probability");
  TAMP_EXPECTS(static_cast<bool>(hooks.make_body) &&
                   static_cast<bool>(hooks.note_complete),
               "solver hooks must provide make_body and note_complete");
  TAMP_TRACE_SCOPE("pipeline/run_iterations");

  const int n = config.num_iterations;
  const bool overlapped = config.mode == PipelineMode::overlap;
  const int partition_threads = resolve_num_threads(config.threads);
  // Overlap needs at least one worker besides the driver; the pool size
  // matches the initial decomposition's thread count when that is larger
  // so ThreadPool::shared() is asked for one consistent size per run.
  ThreadPool* pool =
      overlapped ? ThreadPool::shared(std::max(2, partition_threads)) : nullptr;

  PipelineRunReport report;
  report.iterations.assign(static_cast<std::size_t>(n), {});
  const Stopwatch clock;

  // Prep owns a private planning mesh; the live mesh is only touched at
  // iteration boundaries on this (the driver) thread.
  PrepContext ctx{live_mesh,
                  config.strategy == partition::Strategy::hybrid
                      ? partition::Strategy::mc_tl
                      : config.strategy};
  std::atomic<bool> cancel{false};

  std::shared_ptr<const IterationSnapshot> current = initial_snapshot(
      ctx, config, partition_threads, clock, report.iterations[0]);

  for (int i = 0; i < n; ++i) {
    PipelineIterationStats& it = report.iterations[static_cast<std::size_t>(i)];
    // Depth-1 handoff: at most one prep is ever in flight, and it is
    // joined before the next launches.
    ThreadPool::TaskHandle handle;
    std::shared_ptr<std::shared_ptr<const IterationSnapshot>> slot;
    if (i + 1 < n && pool != nullptr) {
      slot = std::make_shared<std::shared_ptr<const IterationSnapshot>>();
      handle = pool->submit_background(
          [&ctx, &config, &cancel, &clock, &report, slot, prev = current,
           next = i + 1] {
            *slot = prep_snapshot(
                ctx, config, *prev, next, cancel, clock,
                report.iterations[static_cast<std::size_t>(next)]);
          });
    }

    try {
      maybe_fault(config.fault, PipelineFault::Stage::solve, i);
      verify_snapshot(*current, "solve entry");
      live_mesh.set_cell_levels(current->levels);
      const runtime::TaskBody body = hooks.make_body(*current);
      runtime::RuntimeConfig rc;
      rc.num_processes = config.nprocesses;
      rc.workers_per_process = config.workers_per_process;
      rc.adversarial = config.adversarial;
      it.solve_start = clock.seconds();
      const runtime::ExecutionReport exec =
          runtime::execute(current->graph, current->prepared, rc, body);
      it.solve_end = clock.seconds();
      hooks.note_complete();
      if (hooks.observer) hooks.observer(*current, exec);
      // Catches a consumer (body, observer) that held onto a mutable
      // reference: the seal must still match after the solve window.
      verify_snapshot(*current, "solve exit");
    } catch (...) {
      // Drain before rethrowing: cancel the in-flight prep, wait for it,
      // and swallow its error — the earlier iteration's failure is the
      // one the caller sees, exactly once.
      cancel.store(true, std::memory_order_release);
      if (handle != nullptr) {
        try {
          pool->wait(handle);
        } catch (...) {
        }
      }
      throw;
    }

    if (i + 1 < n) {
      if (handle != nullptr) {
        pool->wait(handle);  // rethrows a prep-stage failure (drained: the
                             // failing task already completed by throwing)
        current = *slot;
        TAMP_ENSURE(current != nullptr,
                    "prep abandoned without a pipeline cancellation");
      } else {
        // Sync mode (or no pool): prep runs here, after the solve — the
        // exact stage order the overlapped schedule must reproduce.
        current = prep_snapshot(
            ctx, config, *current, i + 1, cancel, clock,
            report.iterations[static_cast<std::size_t>(i + 1)]);
      }
    }
  }

  // Stage-overlap accounting for the doctor: hidden = prep time spent
  // under the previous iteration's solve.
  sim::StageOverlapReport& ov = report.overlap;
  ov.iterations = n;
  ov.overlapped = overlapped;
  ov.wall_seconds = clock.seconds();
  index_t cells_changed = 0, migrated = 0;
  double max_migration = 0;
  int patched = 0, reused = 0;
  for (int i = 0; i < n; ++i) {
    const PipelineIterationStats& it =
        report.iterations[static_cast<std::size_t>(i)];
    ov.prep_seconds += it.prep_end - it.prep_start;
    ov.solve_seconds += it.solve_end - it.solve_start;
    cells_changed += it.cells_changed;
    migrated += it.migrated_cells;
    max_migration = std::max(max_migration, it.max_domain_migration);
    patched += it.graph_patched ? 1 : 0;
    reused += it.decomposition_reused ? 1 : 0;
    if (i >= 1) {
      const PipelineIterationStats& prev =
          report.iterations[static_cast<std::size_t>(i - 1)];
      ov.hideable_prep_seconds += it.prep_end - it.prep_start;
      ov.hidden_seconds += interval_overlap(it.prep_start, it.prep_end,
                                            prev.solve_start, prev.solve_end);
    }
  }
  sim::publish_stage_overlap_metrics(ov);
  // Once-per-run summary gauges, published unconditionally (obs::gauge,
  // not the TAMP_METRIC_* macros): the cross-mode determinism gate in
  // tools/pipeline_smoke.sh reads them from Release builds that compile
  // the tracing macros out.
  obs::gauge("pipeline.cells_changed.total")
      .set(static_cast<double>(cells_changed));
  obs::gauge("pipeline.migrated_cells.total")
      .set(static_cast<double>(migrated));
  obs::gauge("pipeline.max_domain_migration").set(max_migration);
  obs::gauge("pipeline.patched_iterations").set(static_cast<double>(patched));
  obs::gauge("pipeline.reused_decompositions")
      .set(static_cast<double>(reused));
  return report;
}

SolverHooks euler_pipeline_hooks(
    solver::EulerSolver& solver,
    std::function<runtime::TaskBody(runtime::TaskBody,
                                    const IterationSnapshot&)>
        wrap_body) {
  SolverHooks hooks;
  hooks.make_body = [&solver, wrap = std::move(wrap_body)](
                        const IterationSnapshot& snap) {
    runtime::TaskBody body = solver.make_iteration_body(snap.graph,
                                                        snap.classes);
    return wrap ? wrap(std::move(body), snap) : body;
  };
  hooks.note_complete = [&solver] { solver.note_tasks_complete(); };
  return hooks;
}

SolverHooks transport_pipeline_hooks(
    solver::TransportSolver& solver,
    std::function<runtime::TaskBody(runtime::TaskBody,
                                    const IterationSnapshot&)>
        wrap_body) {
  SolverHooks hooks;
  hooks.make_body = [&solver, wrap = std::move(wrap_body)](
                        const IterationSnapshot& snap) {
    runtime::TaskBody body = solver.make_iteration_body(snap.graph,
                                                        snap.classes);
    return wrap ? wrap(std::move(body), snap) : body;
  };
  hooks.note_complete = [&solver] { solver.note_tasks_complete(); };
  return hooks;
}

}  // namespace tamp::core
