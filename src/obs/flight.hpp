// Runtime flight recorder: bounded per-worker event rings for *measured*
// execution.
//
// The tracing session (obs/trace.hpp) answers "what did the pipeline
// phases do"; this module answers "what did every worker of the task
// runtime do, instant by instant" — the raw material the schedule doctor
// needs to blame idle time on real threads the same way it blames the
// simulator's (paper Fig 5: FLUSEPA trace vs FLUSIM trace).
//
// Design constraints, in order:
//  * bounded memory — each worker owns one fixed-capacity ring;
//    recording never allocates past construction. When a ring is full
//    the oldest event is overwritten and an explicit drop counter
//    increments; consumers must check dropped() instead of assuming a
//    complete history.
//  * lock-free recording — exactly one producer per ring (the owning
//    worker), no atomics on the hot path. Readers (merge, stats) run
//    after the execution quiesces (thread join publishes everything).
//  * zero overhead when off — instrumentation sites in runtime::execute
//    and ThreadPool compile out entirely with TAMP_ENABLE_TRACING=OFF,
//    and cost one null-pointer test per event when compiled in but not
//    attached.
//
// Event schema (see DESIGN.md "Flight recorder"): every event is a POD
// {kind, t_seconds, a, b}. The meaning of a/b depends on the kind:
//
//   kind            a                  b
//   task_dequeue    task id            ready-queue depth after dequeue
//   task_begin      task id            —
//   task_end        task id            —
//   dep_release     released task id   releasing task id
//   idle_begin      —                  —
//   idle_end        —                  —
//   steal_attempt   victim slot        —
//   steal_success   victim slot        —
//
// Timestamps are seconds on the caller's clock (runtime::execute uses
// its launch-relative Stopwatch, so flight events line up with
// ExecutionReport spans exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tamp::obs {

enum class FlightEventKind : std::uint8_t {
  task_dequeue = 0,
  task_begin = 1,
  task_end = 2,
  dep_release = 3,
  idle_begin = 4,
  idle_end = 5,
  steal_attempt = 6,
  steal_success = 7,
};
inline constexpr int kNumFlightEventKinds = 8;
[[nodiscard]] const char* to_string(FlightEventKind k);

/// One recorded event. POD by design: pushing is a bounded array store.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::idle_begin;
  double t_seconds = 0;   ///< caller-clock timestamp
  std::int64_t a = -1;    ///< kind-dependent payload (see header comment)
  std::int64_t b = -1;    ///< kind-dependent payload
};

/// Fixed-capacity single-producer ring. Overwrite-oldest: pushing into a
/// full ring replaces the oldest event; dropped() says how many were
/// lost. Reading (events(), dropped()) is only defined once the producer
/// has quiesced — the runtime reads after joining its workers.
class FlightRing {
public:
  explicit FlightRing(std::size_t capacity);

  /// Record one event (overwrites the oldest when full). Never allocates.
  void push(const FlightEvent& ev) {
    buf_[static_cast<std::size_t>(head_ % capacity_)] = ev;
    ++head_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const { return head_; }
  /// Events lost to overwriting: total_recorded() − size().
  [[nodiscard]] std::uint64_t dropped() const {
    return head_ > capacity_ ? head_ - capacity_ : 0;
  }
  /// Events currently held.
  [[nodiscard]] std::size_t size() const {
    return head_ < capacity_ ? static_cast<std::size_t>(head_) : capacity_;
  }

  /// Copy out the surviving events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;

private:
  std::uint64_t head_ = 0;  ///< total pushes; head_ % capacity_ = next slot
  std::size_t capacity_;
  std::vector<FlightEvent> buf_;
};

/// A FlightEvent tagged with the ring (worker) that recorded it — the
/// element type of the merged cross-worker stream.
struct WorkerFlightEvent {
  int worker = 0;  ///< ring index (runtime: process·workers_per_process+w)
  FlightEvent event;
};

/// Per-worker rings plus merge/summary helpers. One recorder per
/// execution (runtime::execute) or per pool; ring i belongs exclusively
/// to worker i while running.
class FlightRecorder {
public:
  /// Default ring capacity: 16Ki events ≈ 512 KiB per worker — several
  /// solver iterations of headroom before anything drops.
  static constexpr std::size_t kDefaultRingCapacity = 1u << 14;

  FlightRecorder(int num_workers, std::size_t ring_capacity);

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(rings_.size());
  }
  [[nodiscard]] FlightRing& ring(int worker) {
    return rings_[static_cast<std::size_t>(worker)];
  }
  [[nodiscard]] const FlightRing& ring(int worker) const {
    return rings_[static_cast<std::size_t>(worker)];
  }

  /// Σ total_recorded over rings.
  [[nodiscard]] std::uint64_t total_recorded() const;
  /// Σ dropped over rings — non-zero means the merged stream has holes.
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Fixed memory footprint of the event storage.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Merge every ring's surviving events into one stream sorted by
  /// timestamp (ties broken by worker index, then ring order, so the
  /// merge is deterministic). Producers must have quiesced.
  [[nodiscard]] std::vector<WorkerFlightEvent> merged() const;

private:
  std::vector<FlightRing> rings_;
};

/// Headline numbers derived from a recorder — what telemetry publishes
/// and reports print.
struct FlightSummary {
  std::uint64_t events = 0;           ///< surviving (readable) events
  std::uint64_t recorded = 0;         ///< ever pushed
  std::uint64_t dropped = 0;
  std::uint64_t counts[kNumFlightEventKinds] = {};
  double steal_success_rate = 0;      ///< successes / attempts (0 if none)
  /// Σ idle-interval time over workers (well-paired begin/end only).
  double idle_seconds = 0;

  [[nodiscard]] std::uint64_t count(FlightEventKind k) const {
    return counts[static_cast<int>(k)];
  }
};

[[nodiscard]] FlightSummary summarize(const FlightRecorder& recorder);

}  // namespace tamp::obs

#if defined(TAMP_TRACING_ENABLED)

/// Record one flight event into `ring_ptr` when a recorder is attached.
/// Compiled in: one null test + a bounded array store. Compiled out
/// (TAMP_ENABLE_TRACING=OFF): nothing — the instrumentation sites in the
/// runtime and the thread pool vanish entirely.
#define TAMP_FLIGHT_RECORD(ring_ptr, ...)                         \
  do {                                                            \
    if ((ring_ptr) != nullptr)                                    \
      (ring_ptr)->push(::tamp::obs::FlightEvent{__VA_ARGS__});    \
  } while (false)

#else  // !TAMP_TRACING_ENABLED

#define TAMP_FLIGHT_RECORD(ring_ptr, ...) static_cast<void>(0)

#endif  // TAMP_TRACING_ENABLED
