#include "obs/json.hpp"

#include <cstdlib>
#include <string>

#include "support/check.hpp"

namespace tamp::obs {

namespace {

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& what) const {
    throw runtime_failure("JSON parse error at byte " + std::to_string(pos_) +
                          ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue();
      default: return JsonValue(parse_number());
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    // Surrogate pairs: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 6 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("unpaired high surrogate");
      pos_ += 2;
      unsigned lo = 0;
      for (int i = 0; i < 4; ++i) {
        const char c = text_[pos_++];
        lo <<= 4;
        if (c >= '0' && c <= '9') lo |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') lo |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') lo |= static_cast<unsigned>(c - 'A' + 10);
        else fail("invalid hex digit in \\u escape");
      }
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    // Encode as UTF-8.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::boolean) throw runtime_failure("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::number) throw runtime_failure("JSON value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::string) throw runtime_failure("JSON value is not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::array) throw runtime_failure("JSON value is not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::object) throw runtime_failure("JSON value is not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

}  // namespace tamp::obs
