#include "obs/flight.hpp"

#include <algorithm>
#include <stdexcept>

namespace tamp::obs {

const char* to_string(FlightEventKind k) {
  switch (k) {
    case FlightEventKind::task_dequeue: return "task_dequeue";
    case FlightEventKind::task_begin: return "task_begin";
    case FlightEventKind::task_end: return "task_end";
    case FlightEventKind::dep_release: return "dep_release";
    case FlightEventKind::idle_begin: return "idle_begin";
    case FlightEventKind::idle_end: return "idle_end";
    case FlightEventKind::steal_attempt: return "steal_attempt";
    case FlightEventKind::steal_success: return "steal_success";
  }
  return "?";
}

FlightRing::FlightRing(std::size_t capacity)
    : capacity_(capacity), buf_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("flight ring capacity must be positive");
}

std::vector<FlightEvent> FlightRing::events() const {
  std::vector<FlightEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest surviving event sits at head_ % capacity_ once the ring has
  // wrapped; before that the ring is a plain array prefix.
  const std::uint64_t first = head_ > capacity_ ? head_ - capacity_ : 0;
  for (std::uint64_t i = first; i < head_; ++i)
    out.push_back(buf_[static_cast<std::size_t>(i % capacity_)]);
  return out;
}

FlightRecorder::FlightRecorder(int num_workers, std::size_t ring_capacity) {
  if (num_workers < 1)
    throw std::invalid_argument("flight recorder needs at least one worker");
  rings_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) rings_.emplace_back(ring_capacity);
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t sum = 0;
  for (const FlightRing& r : rings_) sum += r.total_recorded();
  return sum;
}

std::uint64_t FlightRecorder::total_dropped() const {
  std::uint64_t sum = 0;
  for (const FlightRing& r : rings_) sum += r.dropped();
  return sum;
}

std::size_t FlightRecorder::memory_bytes() const {
  std::size_t sum = 0;
  for (const FlightRing& r : rings_) sum += r.capacity() * sizeof(FlightEvent);
  return sum;
}

std::vector<WorkerFlightEvent> FlightRecorder::merged() const {
  std::vector<WorkerFlightEvent> out;
  std::size_t total = 0;
  for (const FlightRing& r : rings_) total += r.size();
  out.reserve(total);
  for (int w = 0; w < num_workers(); ++w)
    for (const FlightEvent& ev : rings_[static_cast<std::size_t>(w)].events())
      out.push_back({w, ev});
  // Each ring is already time-ordered; a stable sort on the timestamp
  // keeps per-worker order intact and breaks cross-worker ties by the
  // worker index (the order pushed above).
  std::stable_sort(out.begin(), out.end(),
                   [](const WorkerFlightEvent& x, const WorkerFlightEvent& y) {
                     return x.event.t_seconds < y.event.t_seconds;
                   });
  return out;
}

FlightSummary summarize(const FlightRecorder& recorder) {
  FlightSummary s;
  s.recorded = recorder.total_recorded();
  s.dropped = recorder.total_dropped();
  for (int w = 0; w < recorder.num_workers(); ++w) {
    double idle_open = -1;
    for (const FlightEvent& ev : recorder.ring(w).events()) {
      ++s.events;
      ++s.counts[static_cast<int>(ev.kind)];
      // Idle time counts only well-formed begin/end pairs; an idle_end
      // whose begin was overwritten (or an unclosed begin) contributes
      // nothing rather than a misleading interval.
      if (ev.kind == FlightEventKind::idle_begin) {
        idle_open = ev.t_seconds;
      } else if (ev.kind == FlightEventKind::idle_end) {
        if (idle_open >= 0 && ev.t_seconds > idle_open)
          s.idle_seconds += ev.t_seconds - idle_open;
        idle_open = -1;
      }
    }
  }
  const std::uint64_t attempts = s.count(FlightEventKind::steal_attempt);
  s.steal_success_rate =
      attempts > 0 ? static_cast<double>(s.count(FlightEventKind::steal_success)) /
                         static_cast<double>(attempts)
                   : 0.0;
  return s;
}

}  // namespace tamp::obs
