// Process-wide tracing: scoped spans, instant events and counter samples
// recorded lock-free into per-thread buffers.
//
// The paper argues from *observing* schedules (Gantt traces, occupancy,
// per-level censuses); this module gives the pipeline itself the same
// treatment. A `TAMP_TRACE_SCOPE("partition/coarsen")` guard records a
// complete span (steady-clock start/end, dense thread id, nesting depth)
// into the global TraceSession; exporters (obs/export.hpp, sim/trace_json)
// merge these pipeline-phase spans with task spans into one Chrome
// trace-event timeline.
//
// Cost model:
//  * compiled out (TAMP_ENABLE_TRACING=OFF → no TAMP_TRACING_ENABLED
//    define): every TAMP_TRACE_* macro expands to `static_cast<void>(0)`
//    — literally zero code in the hot paths;
//  * compiled in, runtime-disabled (the default): one relaxed atomic load
//    per site;
//  * enabled: one append into a thread-local chunk list — no locks, no
//    contention between recording threads.
//
// Thread safety: recording is wait-free per thread (each thread owns its
// chunk list; slots are published with a release store of the chunk's
// count and read back with an acquire load). snapshot() may run
// concurrently with recorders and sees a consistent prefix of every
// thread's events. clear() requires quiescence (no spans in flight).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace tamp::obs {

enum class EventKind : std::uint8_t {
  span,     ///< complete interval [start_ns, end_ns]
  instant,  ///< point event at start_ns (e.g. a routed log record)
  counter,  ///< sampled value at start_ns
};

/// One recorded event, in steady-clock nanoseconds since the session epoch.
struct TraceEvent {
  EventKind kind = EventKind::instant;
  std::string name;            ///< span/instant/counter name
  std::string detail;          ///< optional payload (log message, args)
  std::uint32_t thread = 0;    ///< dense session thread id (0, 1, …)
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;     ///< spans only
  std::int32_t depth = 0;      ///< nesting depth at span entry
  double value = 0.0;          ///< counters only
};

namespace detail {
struct ThreadBuffer;
}

/// Process-global trace recorder. Obtain via instance(); all record_*
/// entry points are safe from any thread and cheap no-ops while disabled.
class TraceSession {
public:
  static TraceSession& instance();

  /// Runtime recording flag. Initialised from the TAMP_TRACE environment
  /// variable (1/true/on); off by default.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Steady-clock nanoseconds since the session epoch (process start).
  [[nodiscard]] std::int64_t now_ns() const;

  /// Record a complete span. Prefer TAMP_TRACE_SCOPE over calling this.
  void record_span(std::string name, std::int64_t start_ns,
                   std::int64_t end_ns, std::string detail = {});
  /// Record an instant event (timestamp = now).
  void record_instant(std::string name, std::string detail = {});
  /// Record a counter sample (timestamp = now).
  void record_counter(std::string name, double value);

  /// Copy out every event recorded so far, sorted by start time. Safe
  /// concurrently with recorders (sees a consistent prefix per thread).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Number of threads that have recorded at least one event.
  [[nodiscard]] std::uint32_t num_threads() const;

  /// Drop all recorded events. Callers must guarantee no other thread is
  /// recording (tests; between pipeline phases on the main thread).
  void clear();

private:
  friend struct detail::ThreadBuffer;
  friend class TraceScope;
  friend std::uint32_t current_thread_id();

  TraceSession();
  ~TraceSession();
  std::shared_ptr<detail::ThreadBuffer> register_thread();
  detail::ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Dense id of the calling thread within the session (registers the
/// thread on first use). Used by the logger so log lines and trace events
/// agree on thread naming.
std::uint32_t current_thread_id();

/// Convenience for TraceSession::instance().set_enabled().
inline void set_tracing_enabled(bool on) {
  TraceSession::instance().set_enabled(on);
}
[[nodiscard]] inline bool tracing_enabled() {
  return TraceSession::instance().enabled();
}

/// RAII span guard: records one complete span from construction to
/// destruction when the session is enabled. `name` must outlive the
/// scope (string literals via the macro).
class TraceScope {
public:
  explicit TraceScope(const char* name);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

private:
  detail::ThreadBuffer* buffer_ = nullptr;  ///< non-null iff armed
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
};

}  // namespace tamp::obs

#if defined(TAMP_TRACING_ENABLED)

#define TAMP_OBS_CONCAT_IMPL(a, b) a##b
#define TAMP_OBS_CONCAT(a, b) TAMP_OBS_CONCAT_IMPL(a, b)

/// Record the enclosing scope as a trace span.
#define TAMP_TRACE_SCOPE(name)                                      \
  const ::tamp::obs::TraceScope TAMP_OBS_CONCAT(tamp_trace_scope_,  \
                                                __LINE__) {         \
    name                                                            \
  }

/// Record an instant event with a payload string.
#define TAMP_TRACE_INSTANT(name, detail_str)                              \
  do {                                                                    \
    ::tamp::obs::TraceSession& tamp_obs_s =                               \
        ::tamp::obs::TraceSession::instance();                            \
    if (tamp_obs_s.enabled()) tamp_obs_s.record_instant((name), (detail_str)); \
  } while (false)

/// Record a counter sample.
#define TAMP_TRACE_COUNTER(name, value)                                   \
  do {                                                                    \
    ::tamp::obs::TraceSession& tamp_obs_s =                               \
        ::tamp::obs::TraceSession::instance();                            \
    if (tamp_obs_s.enabled())                                             \
      tamp_obs_s.record_counter((name), static_cast<double>(value));      \
  } while (false)

#else  // !TAMP_TRACING_ENABLED

#define TAMP_TRACE_SCOPE(name) static_cast<void>(0)
#define TAMP_TRACE_INSTANT(name, detail_str) static_cast<void>(0)
#define TAMP_TRACE_COUNTER(name, value) static_cast<void>(0)

#endif  // TAMP_TRACING_ENABLED
