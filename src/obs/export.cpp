#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace tamp::obs {

namespace {

/// JSON has no inf/nan; map non-finite doubles (e.g. the min of an empty
/// histogram) to 0 so the output always parses.
void append_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

void begin_event(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void append_chrome_events(std::ostream& os, bool& first,
                          const std::vector<TraceEvent>& events, int pid) {
  for (const TraceEvent& ev : events) {
    begin_event(os, first);
    const double ts_us = static_cast<double>(ev.start_ns) / 1000.0;
    os << R"(  {"name":")" << json_escape(ev.name) << '"';
    switch (ev.kind) {
      case EventKind::span: {
        const double dur_us =
            static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0;
        os << R"(,"ph":"X","pid":)" << pid << R"(,"tid":)" << ev.thread
           << R"(,"ts":)";
        append_number(os, ts_us);
        os << R"(,"dur":)";
        append_number(os, dur_us);
        os << R"(,"args":{"depth":)" << ev.depth;
        if (!ev.detail.empty())
          os << R"(,"detail":")" << json_escape(ev.detail) << '"';
        os << "}}";
        break;
      }
      case EventKind::instant: {
        os << R"(,"ph":"i","s":"t","pid":)" << pid << R"(,"tid":)"
           << ev.thread << R"(,"ts":)";
        append_number(os, ts_us);
        os << R"(,"args":{"detail":")" << json_escape(ev.detail) << "\"}}";
        break;
      }
      case EventKind::counter: {
        os << R"(,"ph":"C","pid":)" << pid << R"(,"tid":)" << ev.thread
           << R"(,"ts":)";
        append_number(os, ts_us);
        os << R"(,"args":{"value":)";
        append_number(os, ev.value);
        os << "}}";
        break;
      }
    }
  }
}

void append_process_name(std::ostream& os, bool& first, int pid,
                         std::string_view name) {
  begin_event(os, first);
  os << R"(  {"name":"process_name","ph":"M","pid":)" << pid
     << R"(,"tid":0,"args":{"name":")" << json_escape(name) << "\"}}";
}

void append_thread_name(std::ostream& os, bool& first, int pid, int tid,
                        std::string_view name) {
  begin_event(os, first);
  os << R"(  {"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)"
     << tid << R"(,"args":{"name":")" << json_escape(name) << "\"}}";
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events, int pid) {
  std::ostringstream body;
  bool first = true;
  append_process_name(body, first, pid, "tamp pipeline");
  if (!events.empty()) {
    std::uint32_t max_thread = 0;
    for (const TraceEvent& ev : events)
      max_thread = std::max(max_thread, ev.thread);
    for (std::uint32_t t = 0; t <= max_thread; ++t)
      append_thread_name(body, first, pid, static_cast<int>(t),
                         t == 0 ? "main" : "worker " + std::to_string(t));
  }
  append_chrome_events(body, first, events, pid);
  std::ostringstream os;
  os << "{\"traceEvents\":[\n" << body.str() << "\n]}\n";
  return os.str();
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"tamp-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": ";
    append_number(os, value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"count\": " << h.count << ", \"sum\": ";
    append_number(os, h.sum);
    os << ", \"mean\": ";
    append_number(os, h.mean());
    os << ", \"min\": ";
    append_number(os, h.min);
    os << ", \"max\": ";
    append_number(os, h.max);
    os << ", \"p50\": ";
    append_number(os, h.percentile(50.0));
    os << ", \"p90\": ";
    append_number(os, h.percentile(90.0));
    os << ", \"p99\": ";
    append_number(os, h.percentile(99.0));
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void save_text(const std::string& text, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) throw runtime_failure("cannot open output: " + path);
  out << text;
  if (!out.good()) throw runtime_failure("error writing to: " + path);
}

}  // namespace tamp::obs
