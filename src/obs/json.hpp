// Minimal JSON value model and recursive-descent parser.
//
// The observability layer *emits* JSON (metrics snapshots, Chrome
// traces); the schedule-doctor tooling must also *read* it back —
// tamp-report diffs two `tamp-metrics-v1` files, tests round-trip
// verdicts. This is a deliberately small, dependency-free parser for
// that job: full RFC 8259 grammar, object key order preserved, numbers
// held as doubles (metric values all fit), parse errors reported with
// byte offsets via runtime_failure.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tamp::obs {

/// One JSON value (null / bool / number / string / array / object).
class JsonValue {
public:
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

  using Array = std::vector<JsonValue>;
  /// Key order preserved (diff output should follow file order).
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::boolean), bool_(b) {}
  explicit JsonValue(double v) : kind_(Kind::number), number_(v) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::string), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::array), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::object), object_(std::move(o)) {}

  /// Parse a complete JSON document (throws runtime_failure with the
  /// byte offset of the first error; trailing garbage is an error).
  static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::boolean; }

  /// Typed accessors; throw runtime_failure on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience: member `key` as a number, or `fallback` when absent /
  /// not a number.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;

private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace tamp::obs
