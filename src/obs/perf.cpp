#include "obs/perf.hpp"

#include <cstdlib>
#include <cstring>
#include <ctime>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define TAMP_PERF_LINUX 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace tamp::obs {

const char* to_string(PerfTier t) {
  switch (t) {
    case PerfTier::unavailable: return "unavailable";
    case PerfTier::clock_only: return "clock_only";
    case PerfTier::hardware: return "hardware";
  }
  return "?";
}

const char* to_string(PerfCounterId id) {
  switch (id) {
    case PerfCounterId::cycles: return "cycles";
    case PerfCounterId::instructions: return "instructions";
    case PerfCounterId::llc_misses: return "llc_misses";
    case PerfCounterId::branch_misses: return "branch_misses";
    case PerfCounterId::stalled_cycles_backend: return "stalled_backend";
  }
  return "?";
}

PerfDelta perf_delta(const PerfSample& begin, const PerfSample& end) {
  PerfDelta d;
  const double enabled = static_cast<double>(end.time_enabled_ns) -
                         static_cast<double>(begin.time_enabled_ns);
  const double running = static_cast<double>(end.time_running_ns) -
                         static_cast<double>(begin.time_running_ns);
  // Multiplex extrapolation: if the group only ran for `running` of the
  // `enabled` window, scale counts up by enabled/running. A window the
  // group never ran in yields zeros (share 0), not infinities.
  double scale = 1.0;
  if (enabled > 0) {
    d.running_share = running / enabled;
    scale = running > 0 ? enabled / running : 0.0;
  }
  for (int i = 0; i < kNumPerfCounters; ++i) {
    const double raw = static_cast<double>(end.count[static_cast<std::size_t>(
                           i)]) -
                       static_cast<double>(
                           begin.count[static_cast<std::size_t>(i)]);
    d.count[static_cast<std::size_t>(i)] = raw > 0 ? raw * scale : 0.0;
  }
  d.thread_cpu_ns = end.thread_cpu_ns - begin.thread_cpu_ns;
  return d;
}

PerfTier requested_perf_tier() {
  const char* env = std::getenv("TAMP_PERF");
  if (env == nullptr) return PerfTier::hardware;
  if (std::strcmp(env, "off") == 0) return PerfTier::unavailable;
  if (std::strcmp(env, "clock") == 0) return PerfTier::clock_only;
  return PerfTier::hardware;
}

namespace {

double thread_cpu_now_ns() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) * 1e9 +
           static_cast<double>(ts.tv_nsec);
#endif
  return 0.0;
}

#if defined(TAMP_PERF_LINUX)

struct CounterSpec {
  std::uint32_t type;
  std::uint64_t config;
};

// Group order must match PerfCounterId. The leader is cycles; siblings
// that fail to open are simply absent from the group read.
constexpr CounterSpec kCounterSpec[kNumPerfCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int open_counter(const CounterSpec& spec, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = group_fd == -1 ? 1 : 0;  // leader starts disabled
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, whichever CPU it runs on.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

#endif  // TAMP_PERF_LINUX

}  // namespace

PerfGroup::PerfGroup(PerfTier max_tier) {
  fd_.fill(-1);
  value_index_.fill(-1);
  if (max_tier == PerfTier::unavailable) return;
  tier_ = PerfTier::clock_only;
  if (max_tier == PerfTier::clock_only) return;
#if defined(TAMP_PERF_LINUX)
  group_fd_ = open_counter(kCounterSpec[0], -1);
  if (group_fd_ < 0) {
    group_fd_ = -1;
    return;  // no perf access at all: stay clock_only
  }
  fd_[0] = group_fd_;
  valid_[0] = true;
  value_index_[0] = 0;
  num_open_ = 1;
  for (int i = 1; i < kNumPerfCounters; ++i) {
    const int fd = open_counter(kCounterSpec[static_cast<std::size_t>(i)],
                                group_fd_);
    if (fd < 0) continue;  // sibling missing on this machine: keep going
    fd_[static_cast<std::size_t>(i)] = fd;
    valid_[static_cast<std::size_t>(i)] = true;
    // Group reads return values in open order of the surviving members.
    value_index_[static_cast<std::size_t>(i)] = num_open_;
    ++num_open_;
  }
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  tier_ = PerfTier::hardware;
#endif
}

PerfGroup::~PerfGroup() {
#if defined(TAMP_PERF_LINUX)
  for (int fd : fd_)
    if (fd >= 0) close(fd);
#endif
}

int PerfGroup::num_valid() const {
  int n = 0;
  for (bool v : valid_) n += v ? 1 : 0;
  return n;
}

bool PerfGroup::read(PerfSample& out) const {
  if (tier_ == PerfTier::unavailable) return false;
  out = PerfSample{};
  out.thread_cpu_ns = thread_cpu_now_ns();
  if (tier_ == PerfTier::clock_only) return true;
#if defined(TAMP_PERF_LINUX)
  // read_format layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kNumPerfCounters] = {};
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(num_open_)) * sizeof(std::uint64_t));
  if (::read(group_fd_, buf, static_cast<std::size_t>(want)) != want)
    return true;  // keep the clock value; counts stay zero
  out.time_enabled_ns = buf[1];
  out.time_running_ns = buf[2];
  for (int i = 0; i < kNumPerfCounters; ++i) {
    const int idx = value_index_[static_cast<std::size_t>(i)];
    if (idx >= 0) out.count[static_cast<std::size_t>(i)] = buf[3 + idx];
  }
#endif
  return true;
}

PerfTier PerfGroup::probe(PerfTier max_tier) {
  PerfGroup g(max_tier);
  return g.tier();
}

}  // namespace tamp::obs
