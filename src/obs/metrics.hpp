// Process-wide metrics registry: named counters, gauges and histograms
// with cheap atomic updates and a consistent snapshot API.
//
// Counters are monotonically-added 64-bit integers (task counts, FM
// moves), gauges hold the latest double (imbalance of the last
// decomposition), histograms record value distributions in log-linear
// buckets (16 sub-buckets per power of two → ≤ ~6 % relative error on
// percentile estimates, HdrHistogram-style).
//
// Updates are lock-free; registry lookup by name takes a mutex, so hot
// loops should resolve `obs::counter("x")` once and keep the reference.
// The TAMP_METRIC_* macros compile out entirely when the instrumentation
// build flag is off; the classes themselves are always available (used
// directly by ScopedTimer, benches and tests).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace tamp::obs {

namespace detail {
/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS targets).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}
inline void atomic_min(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}
inline void atomic_max(std::atomic<double>& target, double value) {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}
}  // namespace detail

/// Monotonic integer metric.
class Counter {
public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Latest-value metric.
class Gauge {
public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Immutable copy of a histogram's state, with percentile estimation.
struct HistogramSnapshot {
  /// Log-linear bucketing: exponents [kMinExp, kMaxExp), 16 sub-buckets
  /// per power of two; values below 2^kMinExp land in bucket 0, values at
  /// or above 2^kMaxExp in the last bucket.
  static constexpr int kMinExp = -30;  ///< ~1e-9 (ns if values are seconds)
  static constexpr int kMaxExp = 34;   ///< ~1.7e10
  static constexpr int kSubBuckets = 16;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets;

  std::uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<std::uint64_t, static_cast<std::size_t>(kNumBuckets)> buckets{};

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Estimated value at percentile p ∈ [0, 100], interpolated within the
  /// containing bucket and clamped to the exact [min, max] range.
  [[nodiscard]] double percentile(double p) const;

  [[nodiscard]] static int bucket_index(double v);
  [[nodiscard]] static double bucket_lower(int index);
  [[nodiscard]] static double bucket_upper(int index);
};

/// Concurrent histogram of positive doubles (non-positive values count
/// into the lowest bucket). Lock-free recording.
class Histogram {
public:
  void record(double v) {
    const auto b =
        static_cast<std::size_t>(HistogramSnapshot::bucket_index(v));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sum_, v);
    detail::atomic_min(min_, v);
    detail::atomic_max(max_, v);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

private:
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(HistogramSnapshot::kNumBuckets)>
      buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Process-global metrics registry. Metric objects live for the process
/// lifetime; references returned by counter()/gauge()/histogram() stay
/// valid forever and may be cached.
class Registry {
public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (registrations are kept). Tests only.
  void reset();

private:
  Registry();
  ~Registry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shorthands for the global registry.
inline Counter& counter(const std::string& name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram(const std::string& name) {
  return Registry::instance().histogram(name);
}

}  // namespace tamp::obs

#if defined(TAMP_TRACING_ENABLED)

/// Library-internal instrumentation hooks — compiled out with the
/// tracing build flag so disabled builds pay nothing.
#define TAMP_METRIC_COUNT(name, delta) \
  ::tamp::obs::counter(name).add(static_cast<std::int64_t>(delta))
#define TAMP_METRIC_GAUGE_SET(name, v) \
  ::tamp::obs::gauge(name).set(static_cast<double>(v))
#define TAMP_METRIC_GAUGE_ADD(name, v) \
  ::tamp::obs::gauge(name).add(static_cast<double>(v))
#define TAMP_METRIC_RECORD(name, v) \
  ::tamp::obs::histogram(name).record(static_cast<double>(v))

#else  // !TAMP_TRACING_ENABLED

#define TAMP_METRIC_COUNT(name, delta) static_cast<void>(0)
#define TAMP_METRIC_GAUGE_SET(name, v) static_cast<void>(0)
#define TAMP_METRIC_GAUGE_ADD(name, v) static_cast<void>(0)
#define TAMP_METRIC_RECORD(name, v) static_cast<void>(0)

#endif  // TAMP_TRACING_ENABLED
