#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <mutex>

namespace tamp::obs {

namespace detail {

constexpr std::size_t kChunkCapacity = 512;

/// Fixed-size block of events. The owning thread writes a slot, then
/// publishes it with a release store of `count`; readers acquire `count`
/// and may copy the published prefix while the writer keeps appending.
struct Chunk {
  std::array<TraceEvent, kChunkCapacity> events;
  std::atomic<std::size_t> count{0};
  std::atomic<Chunk*> next{nullptr};
};

/// Per-thread event sink: a singly-linked list of chunks. Only the owning
/// thread appends (wait-free); snapshot() readers walk head/next/count
/// with acquire loads.
struct ThreadBuffer {
  std::uint32_t thread_id = 0;
  std::atomic<Chunk*> head{nullptr};
  Chunk* tail = nullptr;   ///< writer-owned cursor
  std::int32_t depth = 0;  ///< writer-owned span nesting level

  ~ThreadBuffer() { free_chunks(); }

  void free_chunks() {
    Chunk* c = head.load(std::memory_order_acquire);
    head.store(nullptr, std::memory_order_release);
    tail = nullptr;
    while (c != nullptr) {
      Chunk* nxt = c->next.load(std::memory_order_acquire);
      delete c;
      c = nxt;
    }
  }

  void push(TraceEvent&& e) {
    if (tail == nullptr) {
      auto* c = new Chunk;
      tail = c;
      head.store(c, std::memory_order_release);
    } else if (tail->count.load(std::memory_order_relaxed) ==
               kChunkCapacity) {
      auto* c = new Chunk;
      tail->next.store(c, std::memory_order_release);
      tail = c;
    }
    const std::size_t i = tail->count.load(std::memory_order_relaxed);
    tail->events[i] = std::move(e);
    tail->count.store(i + 1, std::memory_order_release);
  }
};

}  // namespace detail

struct TraceSession::Impl {
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  mutable std::mutex registry_mutex;
  /// Shared ownership with each thread's thread_local handle, so events
  /// of exited threads stay readable until the session dies.
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  std::uint32_t next_thread_id = 0;
};

TraceSession::TraceSession() : impl_(std::make_unique<Impl>()) {
  if (const char* env = std::getenv("TAMP_TRACE"); env != nullptr) {
    const std::string v(env);
    enabled_.store(v == "1" || v == "true" || v == "on" || v == "TRUE" ||
                   v == "ON");
  }
}

TraceSession::~TraceSession() = default;

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

std::int64_t TraceSession::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - impl_->epoch)
      .count();
}

std::shared_ptr<detail::ThreadBuffer> TraceSession::register_thread() {
  const std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  auto buffer = std::make_shared<detail::ThreadBuffer>();
  buffer->thread_id = impl_->next_thread_id++;
  impl_->buffers.push_back(buffer);
  return buffer;
}

detail::ThreadBuffer& TraceSession::local_buffer() {
  thread_local std::shared_ptr<detail::ThreadBuffer> buffer =
      register_thread();
  return *buffer;
}

void TraceSession::record_span(std::string name, std::int64_t start_ns,
                               std::int64_t end_ns, std::string payload) {
  if (!enabled()) return;
  detail::ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.kind = EventKind::span;
  ev.name = std::move(name);
  ev.detail = std::move(payload);
  ev.thread = buf.thread_id;
  ev.start_ns = start_ns;
  ev.end_ns = end_ns;
  ev.depth = buf.depth;
  buf.push(std::move(ev));
}

void TraceSession::record_instant(std::string name, std::string payload) {
  if (!enabled()) return;
  detail::ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.kind = EventKind::instant;
  ev.name = std::move(name);
  ev.detail = std::move(payload);
  ev.thread = buf.thread_id;
  ev.start_ns = now_ns();
  ev.depth = buf.depth;
  buf.push(std::move(ev));
}

void TraceSession::record_counter(std::string name, double value) {
  if (!enabled()) return;
  detail::ThreadBuffer& buf = local_buffer();
  TraceEvent ev;
  ev.kind = EventKind::counter;
  ev.name = std::move(name);
  ev.thread = buf.thread_id;
  ev.start_ns = now_ns();
  ev.value = value;
  buf.push(std::move(ev));
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  std::vector<std::shared_ptr<detail::ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(impl_->registry_mutex);
    buffers = impl_->buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& buf : buffers) {
    const detail::Chunk* c = buf->head.load(std::memory_order_acquire);
    while (c != nullptr) {
      const std::size_t n = c->count.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i) out.push_back(c->events[i]);
      c = c->next.load(std::memory_order_acquire);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns)
                       return a.start_ns < b.start_ns;
                     return a.thread < b.thread;
                   });
  return out;
}

std::uint32_t TraceSession::num_threads() const {
  const std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  std::uint32_t n = 0;
  for (const auto& buf : impl_->buffers)
    if (buf->head.load(std::memory_order_acquire) != nullptr) ++n;
  return n;
}

void TraceSession::clear() {
  const std::lock_guard<std::mutex> lock(impl_->registry_mutex);
  for (const auto& buf : impl_->buffers) buf->free_chunks();
}

std::uint32_t current_thread_id() {
  return TraceSession::instance().local_buffer().thread_id;
}

TraceScope::TraceScope(const char* name) {
  TraceSession& session = TraceSession::instance();
  if (!session.enabled()) return;
  buffer_ = &session.local_buffer();
  name_ = name;
  start_ns_ = session.now_ns();
  depth_ = buffer_->depth++;
}

TraceScope::~TraceScope() {
  if (buffer_ == nullptr) return;
  TraceSession& session = TraceSession::instance();
  buffer_->depth = depth_;
  TraceEvent ev;
  ev.kind = EventKind::span;
  ev.name = name_;
  ev.thread = buffer_->thread_id;
  ev.start_ns = start_ns_;
  ev.end_ns = session.now_ns();
  ev.depth = depth_;
  buffer_->push(std::move(ev));
}

}  // namespace tamp::obs
