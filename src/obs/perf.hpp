// Hardware performance-counter groups: the "why is this task slow"
// companion to the flight recorder's "when was this worker busy".
//
// A PerfGroup owns one perf_event_open counter group bound to the
// calling thread — cycles (leader), instructions, LLC misses, branch
// misses and stalled-cycles-backend — read atomically with a single
// group read, so the five counts of one sample describe the same
// instruction window. The runtime opens one group per worker and reads
// it around every task body; the deltas accrue per task and are
// aggregated per (process × subiteration × task class) into a
// PerfProfile (runtime/runtime.hpp), which is what makes a task
// runtime's behaviour legible: "class L3/face/int runs at IPC 0.6 with
// 14 LLC misses per object" is an optimization brief, a wall-clock
// duration is not.
//
// Fallback tiers, because perf is a privilege, not a given (containers,
// perf_event_paranoid ≥ 3, macOS, CI runners, VMs without a PMU):
//
//   hardware    the counter group opened; read() fills counts plus the
//               enabled/running times used for multiplex correction.
//               Individual siblings may still be absent (e.g. no
//               stalled-cycles event on this machine) — check
//               counter_valid().
//   clock_only  no perf access: read() fills only the thread-CPU clock
//               (CLOCK_THREAD_CPUTIME_ID), so per-class CPU-vs-wall
//               attribution still works; every count is invalid.
//   unavailable recording forced off (TAMP_PERF=off, tests): read()
//               returns false and callers skip attribution entirely.
//
// Construction degrades silently down this ladder; nothing throws on a
// missing PMU. The classes compile everywhere (like obs/metrics.hpp);
// the *runtime call sites* are guarded by TAMP_TRACING_ENABLED so a
// TAMP_ENABLE_TRACING=OFF build carries no attribution code at all.
#pragma once

#include <array>
#include <cstdint>

namespace tamp::obs {

/// Capability actually obtained, weakest first (so the weakest worker
/// tier of a run is the min over workers).
enum class PerfTier : std::uint8_t {
  unavailable = 0,
  clock_only = 1,
  hardware = 2,
};
[[nodiscard]] const char* to_string(PerfTier t);

/// The fixed counter set of one group, in group (= read) order.
inline constexpr int kNumPerfCounters = 5;
enum class PerfCounterId : std::uint8_t {
  cycles = 0,
  instructions = 1,
  llc_misses = 2,
  branch_misses = 3,
  stalled_cycles_backend = 4,
};
[[nodiscard]] const char* to_string(PerfCounterId id);

/// One atomic group read. Counts are raw (not multiplex-corrected);
/// correct deltas with perf_delta(), which scales by the
/// enabled/running ratio of the sampling window.
struct PerfSample {
  std::array<std::uint64_t, kNumPerfCounters> count{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  /// Thread CPU clock (valid from clock_only tier up).
  double thread_cpu_ns = 0;
};

/// end − begin, multiplex-corrected: when the kernel timesliced the
/// group (more groups than PMU slots), counts are scaled by
/// Δenabled/Δrunning — the standard extrapolation, exact when
/// running_share == 1.
struct PerfDelta {
  std::array<double, kNumPerfCounters> count{};
  /// Δrunning/Δenabled of the window; 1 = counters saw everything.
  double running_share = 1.0;
  double thread_cpu_ns = 0;
};
[[nodiscard]] PerfDelta perf_delta(const PerfSample& begin,
                                   const PerfSample& end);

/// One per-thread counter group. Open it on the thread you want counted
/// (perf binds to the *calling* thread); reads from the same thread are
/// a single syscall, ~1 µs. Not copyable or movable — workers construct
/// one in place for their lifetime.
class PerfGroup {
public:
  /// Opens the strongest tier ≤ `max_tier` this environment grants.
  explicit PerfGroup(PerfTier max_tier = PerfTier::hardware);
  ~PerfGroup();
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  [[nodiscard]] PerfTier tier() const { return tier_; }
  /// Which counters of the group actually opened (hardware tier only;
  /// all false otherwise).
  [[nodiscard]] const std::array<bool, kNumPerfCounters>& counter_valid()
      const {
    return valid_;
  }
  [[nodiscard]] int num_valid() const;

  /// Sample the group. False at tier unavailable (out is untouched);
  /// true otherwise — clock_only fills only thread_cpu_ns.
  bool read(PerfSample& out) const;

  /// Open-and-close probe on the calling thread: the tier a PerfGroup
  /// constructed here would get. Cheap enough for startup banners, not
  /// for hot paths.
  [[nodiscard]] static PerfTier probe(PerfTier max_tier = PerfTier::hardware);

private:
  PerfTier tier_ = PerfTier::unavailable;
  std::array<bool, kNumPerfCounters> valid_{};
  /// Position of each counter's value in the group read buffer; -1 when
  /// the sibling did not open.
  std::array<int, kNumPerfCounters> value_index_{};
  int group_fd_ = -1;
  std::array<int, kNumPerfCounters> fd_{};
  int num_open_ = 0;
};

/// Tier ceiling requested via the TAMP_PERF environment variable:
/// "off" → unavailable, "clock" → clock_only, anything else (or unset)
/// → hardware. Lets CI scripts force the fallback path without
/// rebuilding.
[[nodiscard]] PerfTier requested_perf_tier();

}  // namespace tamp::obs
