// Serialisation of observability data: trace sessions to Chrome
// trace-event JSON fragments (merged with task spans by sim/trace_json)
// and metrics snapshots to a stable JSON schema ("tamp-metrics-v1")
// consumed by bench_artifacts/ post-processing.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tamp::obs {

/// Escape a string for embedding inside a JSON string literal (quotes,
/// backslash, control characters; UTF-8 passes through untouched).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Trace pid under which pipeline-phase spans are exported, far above any
/// simulated process rank so the two timelines never collide in Perfetto.
inline constexpr int kPipelineTracePid = 1'000'000;

/// Append one Chrome trace-event object per session event (comma
/// separated, honouring/updating `first`). Spans become ph:"X" complete
/// events, instants ph:"i", counters ph:"C"; timestamps are converted
/// from session nanoseconds to trace microseconds. All events are placed
/// under `pid` with tid = the session's dense thread id.
void append_chrome_events(std::ostream& os, bool& first,
                          const std::vector<TraceEvent>& events, int pid);

/// Append a ph:"M" process_name metadata event.
void append_process_name(std::ostream& os, bool& first, int pid,
                         std::string_view name);
/// Append a ph:"M" thread_name metadata event.
void append_thread_name(std::ostream& os, bool& first, int pid, int tid,
                        std::string_view name);

/// Serialise session events into a complete standalone Chrome trace
/// document (with process/thread metadata), for use outside the merged
/// task-trace path.
[[nodiscard]] std::string to_chrome_trace(const std::vector<TraceEvent>& events,
                                          int pid = kPipelineTracePid);

/// Serialise a metrics snapshot to JSON:
/// {"schema":"tamp-metrics-v1","counters":{...},"gauges":{...},
///  "histograms":{name:{count,sum,mean,min,max,p50,p90,p99}}}
[[nodiscard]] std::string metrics_to_json(const MetricsSnapshot& snap);

/// Write text to a file; throws runtime_failure on I/O error.
void save_text(const std::string& text, const std::string& path);

}  // namespace tamp::obs
