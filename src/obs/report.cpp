#include "obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "support/check.hpp"

namespace tamp::obs {

namespace {

void append_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

MetricsFile::Hist parse_hist(const JsonValue& v) {
  MetricsFile::Hist h;
  h.count = v.number_or("count", 0);
  h.sum = v.number_or("sum", 0);
  h.mean = v.number_or("mean", 0);
  h.min = v.number_or("min", 0);
  h.max = v.number_or("max", 0);
  h.p50 = v.number_or("p50", 0);
  h.p90 = v.number_or("p90", 0);
  h.p99 = v.number_or("p99", 0);
  return h;
}

double hist_stat(const MetricsFile::Hist& h, const std::string& stat,
                 bool& known) {
  known = true;
  if (stat == "count") return h.count;
  if (stat == "sum") return h.sum;
  if (stat == "mean") return h.mean;
  if (stat == "min") return h.min;
  if (stat == "max") return h.max;
  if (stat == "p50") return h.p50;
  if (stat == "p90") return h.p90;
  if (stat == "p99") return h.p99;
  known = false;
  return 0;
}

}  // namespace

MetricsFile parse_metrics_json(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  if (!doc.is_object()) throw runtime_failure("metrics document is not an object");
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "tamp-metrics-v1")
    throw runtime_failure("not a tamp-metrics-v1 document");

  MetricsFile file;
  if (const JsonValue* counters = doc.find("counters"); counters != nullptr)
    for (const auto& [name, v] : counters->as_object())
      file.counters[name] = v.as_number();
  if (const JsonValue* gauges = doc.find("gauges"); gauges != nullptr)
    for (const auto& [name, v] : gauges->as_object())
      file.gauges[name] = v.as_number();
  if (const JsonValue* hists = doc.find("histograms"); hists != nullptr)
    for (const auto& [name, v] : hists->as_object())
      file.histograms[name] = parse_hist(v);
  return file;
}

MetricsFile load_metrics_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw runtime_failure("cannot open metrics file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_metrics_json(buf.str());
  } catch (const runtime_failure& e) {
    throw runtime_failure(path + ": " + e.what());
  }
}

std::vector<RegressionRule> default_doctor_rules(double makespan_tol,
                                                 double occupancy_tol,
                                                 double p99_tol,
                                                 double blame_tol) {
  return {
      {"gauges.doctor.makespan", makespan_tol, /*higher_is_worse=*/true,
       /*absolute=*/false},
      {"gauges.doctor.occupancy", occupancy_tol, /*higher_is_worse=*/false,
       /*absolute=*/true},
      {"histograms.doctor.task_length.p99", p99_tol, /*higher_is_worse=*/true,
       /*absolute=*/false},
      {"gauges.doctor.blame.starvation_share", blame_tol,
       /*higher_is_worse=*/true, /*absolute=*/true},
      {"gauges.doctor.blame.dependency_wait_share", blame_tol,
       /*higher_is_worse=*/true, /*absolute=*/true},
      {"gauges.doctor.blame.tail_imbalance_share", blame_tol,
       /*higher_is_worse=*/true, /*absolute=*/true},
  };
}

bool lookup_metric(const MetricsFile& file, const std::string& metric,
                   double& out) {
  if (metric.rfind("counters.", 0) == 0) {
    const auto it = file.counters.find(metric.substr(9));
    if (it == file.counters.end()) return false;
    out = it->second;
    return true;
  }
  if (metric.rfind("gauges.", 0) == 0) {
    const auto it = file.gauges.find(metric.substr(7));
    if (it == file.gauges.end()) return false;
    out = it->second;
    return true;
  }
  if (metric.rfind("histograms.", 0) == 0) {
    // Histogram names themselves contain dots; the *last* dot separates
    // the statistic suffix.
    const std::string rest = metric.substr(11);
    const auto dot = rest.rfind('.');
    if (dot == std::string::npos) return false;
    const auto it = file.histograms.find(rest.substr(0, dot));
    if (it == file.histograms.end()) return false;
    bool known = false;
    const double v = hist_stat(it->second, rest.substr(dot + 1), known);
    if (!known) return false;
    out = v;
    return true;
  }
  return false;
}

std::vector<std::pair<std::string, double>> flatten_metrics(
    const MetricsFile& file) {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, v] : file.counters)
    out.emplace_back("counters." + name, v);
  for (const auto& [name, v] : file.gauges)
    out.emplace_back("gauges." + name, v);
  for (const auto& [name, h] : file.histograms) {
    out.emplace_back("histograms." + name + ".count", h.count);
    out.emplace_back("histograms." + name + ".mean", h.mean);
    out.emplace_back("histograms." + name + ".p50", h.p50);
    out.emplace_back("histograms." + name + ".p90", h.p90);
    out.emplace_back("histograms." + name + ".p99", h.p99);
  }
  return out;
}

bool ReportVerdict::regressed() const {
  for (const RuleFinding& f : findings)
    if (f.regressed) return true;
  return false;
}

ReportVerdict compare_metrics(const MetricsFile& baseline,
                              const MetricsFile& candidate,
                              const std::vector<RegressionRule>& rules) {
  ReportVerdict verdict;
  for (const RegressionRule& rule : rules) {
    RuleFinding f;
    f.metric = rule.metric;
    f.tolerance = rule.tolerance;
    f.absolute = rule.absolute;
    f.higher_is_worse = rule.higher_is_worse;
    double base = 0, cand = 0;
    if (!lookup_metric(baseline, rule.metric, base) ||
        !lookup_metric(candidate, rule.metric, cand)) {
      // A metric missing from either run cannot gate: surfaced in the
      // verdict so the caller notices, but never a regression by itself.
      f.missing = true;
      verdict.findings.push_back(std::move(f));
      continue;
    }
    f.baseline = base;
    f.candidate = cand;
    const double delta = cand - base;
    f.change = rule.absolute
                   ? delta
                   : delta / std::max(std::abs(base),
                                      std::numeric_limits<double>::min());
    f.regressed = rule.higher_is_worse ? f.change > rule.tolerance
                                       : f.change < -rule.tolerance;
    verdict.findings.push_back(std::move(f));
  }
  return verdict;
}

std::string verdict_to_json(const ReportVerdict& verdict) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"tamp-verdict-v1\",\n  \"regressed\": "
     << (verdict.regressed() ? "true" : "false") << ",\n  \"findings\": [";
  bool first = true;
  for (const RuleFinding& f : verdict.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"metric\": \"" << json_escape(f.metric) << "\", \"baseline\": ";
    append_number(os, f.baseline);
    os << ", \"candidate\": ";
    append_number(os, f.candidate);
    os << ", \"change\": ";
    append_number(os, f.change);
    os << ", \"tolerance\": ";
    append_number(os, f.tolerance);
    os << ", \"absolute\": " << (f.absolute ? "true" : "false")
       << ", \"higher_is_worse\": " << (f.higher_is_worse ? "true" : "false")
       << ", \"missing\": " << (f.missing ? "true" : "false")
       << ", \"regressed\": " << (f.regressed ? "true" : "false") << "}";
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

ReportVerdict verdict_from_json(const std::string& text) {
  const JsonValue doc = JsonValue::parse(text);
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "tamp-verdict-v1")
    throw runtime_failure("not a tamp-verdict-v1 document");
  ReportVerdict verdict;
  const JsonValue* findings = doc.find("findings");
  if (findings != nullptr) {
    for (const JsonValue& item : findings->as_array()) {
      RuleFinding f;
      const JsonValue* metric = item.find("metric");
      if (metric != nullptr && metric->is_string())
        f.metric = metric->as_string();
      f.baseline = item.number_or("baseline", 0);
      f.candidate = item.number_or("candidate", 0);
      f.change = item.number_or("change", 0);
      f.tolerance = item.number_or("tolerance", 0);
      const JsonValue* b = item.find("absolute");
      f.absolute = b != nullptr && b->is_bool() && b->as_bool();
      b = item.find("higher_is_worse");
      f.higher_is_worse = b == nullptr || !b->is_bool() || b->as_bool();
      b = item.find("missing");
      f.missing = b != nullptr && b->is_bool() && b->as_bool();
      b = item.find("regressed");
      f.regressed = b != nullptr && b->is_bool() && b->as_bool();
      verdict.findings.push_back(std::move(f));
    }
  }
  return verdict;
}

MetricAnnotation annotate_metric(const std::string& name) {
  const auto has = [&name](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  MetricAnnotation a;
  // Most specific families first; the first match wins.
  if (has(".ipc")) return {"inst/cyc", +1};
  if (has("llc_miss_per_kobject")) return {"miss/kobj", -1};
  if (has("llc_misses") || has("branch_misses") || has("stalled"))
    return {"count", -1};
  if (has("est_dram_gbps")) return {"GB/s", 0};
  if (has("running_share")) return {"share", +1};
  if (has("self_check_error")) return {"s", -1};
  // What-if deltas are predicted *savings*: larger is better.
  if (has("rel_delta")) return {"share", +1};
  if (has("delta_seconds")) return {"s", +1};
  if (has("ns_per_event") || has("ns_per_read")) return {"ns", -1};
  // Repartitioning service & caching families — before the generic
  // bytes/fraction/latency rules so e.g. "cache.hit_rate" and
  // "partition.dirty_fraction" get their service-specific direction.
  if (has("hit_rate")) return {"share", +1};
  if (has("cache.hits")) return {"count", +1};
  if (has("cache.misses") || has("cache.evictions") || has("cache.rejected"))
    return {"count", -1};
  if (has("inflight_joins") || has("cache.entries")) return {"count", 0};
  if (has("dirty_fraction")) return {"share", -1};
  if (has("patch.rebuilds")) return {"count", -1};
  if (has("patch.applied") || has("patch.noop") ||
      has("patched_iterations") || has("reused_decompositions") ||
      has("reused_verbatim"))
    return {"count", +1};
  if (has("bytes")) return {"bytes", -1};
  if (has("_per_s") || has("per_second")) return {"1/s", +1};
  if (has("seconds_per_unit")) return {"s/unit", 0};
  if (has("occupancy")) return {"share", +1};
  if (has("success_rate")) return {"share", +1};
  if (has("speedup")) return {"x", +1};
  if (has("idle") || has("blame") || has("starvation"))
    return {has("seconds") ? "s" : "share", -1};
  if (has("gap") || has("drift") || has("divergence"))
    return {has("seconds") ? "s" : "share", -1};
  if (has("dropped") || has("drops")) return {"count", -1};
  if (has("makespan") || has("latency") || has("wall") || has("overhead"))
    return {has("seconds") || has("wall") ? "s" : "", -1};
  if (has("seconds") || has("_ms") || has("duration"))
    return {has("_ms") ? "ms" : "s", -1};
  if (has("depth")) return {"count", 0};
  if (has("share") || has("fraction") || has("imbalance"))
    return {"share", 0};
  if (has("count") || has("events") || has("tasks") || has("steps") ||
      has("moves") || has("attempts") || has("successes") ||
      has("handoffs") || has("submitted") || has("executed") ||
      has("pops"))
    return {"count", 0};
  return a;
}

}  // namespace tamp::obs
