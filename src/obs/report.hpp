// Run-diff regression reporting over `tamp-metrics-v1` snapshots.
//
// Two runs of the same workload (MC_TL vs SC_OC, today vs yesterday's
// BENCH_*.json) are compared metric by metric; a configurable rule set
// turns the deltas into a verdict that CI can gate on. The pieces are a
// library (not buried in the tamp-report binary) so tests can exercise
// classification and the verdict JSON round-trip directly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tamp::obs {

/// One `tamp-metrics-v1` document, decoded for comparison. Histograms
/// keep only the summary statistics the exporter wrote.
struct MetricsFile {
  struct Hist {
    double count = 0, sum = 0, mean = 0, min = 0, max = 0;
    double p50 = 0, p90 = 0, p99 = 0;
  };
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;
};

/// Parse a metrics JSON document (throws runtime_failure on malformed
/// input or a schema other than tamp-metrics-v1).
[[nodiscard]] MetricsFile parse_metrics_json(const std::string& text);

/// Read + parse a metrics file from disk.
[[nodiscard]] MetricsFile load_metrics_file(const std::string& path);

/// One gate of the regression verdict. `metric` addresses a value as
/// "counters.<name>", "gauges.<name>" or "histograms.<name>.<stat>"
/// (stat ∈ count|sum|mean|min|max|p50|p90|p99).
struct RegressionRule {
  std::string metric;
  double tolerance = 0.05;
  /// Direction that constitutes a regression: true = growth is bad
  /// (makespan, p99 latency), false = shrinkage is bad (occupancy).
  bool higher_is_worse = true;
  /// Compare |candidate − baseline| against `tolerance` directly instead
  /// of relative to the baseline — the right semantics for quantities
  /// that are already shares in [0, 1] (blame fractions, occupancy).
  bool absolute = false;
};

/// The doctor's standard gate set, keyed to the gauges flusim --doctor
/// publishes: makespan, occupancy, p99 task length, idle-blame shares.
[[nodiscard]] std::vector<RegressionRule> default_doctor_rules(
    double makespan_tol, double occupancy_tol, double p99_tol,
    double blame_tol);

/// Outcome of one rule.
struct RuleFinding {
  std::string metric;
  double baseline = 0;
  double candidate = 0;
  double change = 0;  ///< relative, or absolute when the rule says so
  double tolerance = 0;
  bool absolute = false;
  bool higher_is_worse = true;
  bool missing = false;  ///< metric absent from either file (not a gate)
  bool regressed = false;
};

/// Machine-checkable comparison result.
struct ReportVerdict {
  std::vector<RuleFinding> findings;
  [[nodiscard]] bool regressed() const;
};

/// Evaluate `rules` on a baseline/candidate pair.
[[nodiscard]] ReportVerdict compare_metrics(
    const MetricsFile& baseline, const MetricsFile& candidate,
    const std::vector<RegressionRule>& rules);

/// Serialise / reparse the verdict ({"schema":"tamp-verdict-v1",...}).
[[nodiscard]] std::string verdict_to_json(const ReportVerdict& verdict);
[[nodiscard]] ReportVerdict verdict_from_json(const std::string& text);

/// Look up a rule-addressable metric; returns false when absent.
[[nodiscard]] bool lookup_metric(const MetricsFile& file,
                                 const std::string& metric, double& out);

/// Every rule-addressable scalar in a file, in deterministic order —
/// feeds the human-readable diff table (histograms contribute their
/// mean/p50/p90/p99/count).
[[nodiscard]] std::vector<std::pair<std::string, double>> flatten_metrics(
    const MetricsFile& file);

/// Presentation metadata for a metric, inferred from its name: the unit
/// the value is expressed in, and which direction of change is an
/// improvement. Purely cosmetic (the diff table prints it so readers
/// don't have to guess whether +8% occupancy is good news); gating
/// direction always comes from the RegressionRule, never from here.
struct MetricAnnotation {
  std::string unit;  ///< "s", "share", "count", "1/s", ... ; "" unknown
  int direction = 0; ///< +1 higher is better, −1 lower is better, 0 n/a
  [[nodiscard]] const char* direction_label() const {
    return direction > 0 ? "higher=better"
                         : direction < 0 ? "lower=better" : "";
  }
};

/// Name-based annotation heuristics covering the repo's metric families
/// (doctor.*, divergence.*, runtime.*, pool.*, solver.*, obs.flight.*).
[[nodiscard]] MetricAnnotation annotate_metric(const std::string& name);

}  // namespace tamp::obs
