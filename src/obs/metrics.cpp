#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

namespace tamp::obs {

int HistogramSnapshot::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  const double mant = std::frexp(v, &exp);  // v = mant * 2^exp, mant ∈ [0.5, 1)
  const int slot = exp - 1;                 // v ∈ [2^slot, 2^(slot+1))
  if (slot < kMinExp) return 0;
  if (slot >= kMaxExp) return kNumBuckets - 1;
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((2.0 * mant - 1.0) * static_cast<double>(kSubBuckets)));
  return (slot - kMinExp) * kSubBuckets + sub;
}

double HistogramSnapshot::bucket_lower(int index) {
  const int slot = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) /
                              static_cast<double>(kSubBuckets),
                    slot);
}

double HistogramSnapshot::bucket_upper(int index) {
  const int slot = kMinExp + index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                              static_cast<double>(kSubBuckets),
                    slot);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double frac =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      const double lo = bucket_lower(b);
      const double hi = bucket_upper(b);
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cumulative += in_bucket;
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b)
    snap.buckets[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, g] : impl_->gauges)
    snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms)
    snap.histograms.emplace_back(name, h->snapshot());
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& [name, c] : impl_->counters) c->reset();
  for (const auto& [name, g] : impl_->gauges) g->reset();
  for (const auto& [name, h] : impl_->histograms) h->reset();
}

}  // namespace tamp::obs
