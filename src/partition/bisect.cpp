#include "partition/bisect.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "partition/balance.hpp"
#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/refine.hpp"

namespace tamp::partition {

std::vector<part_t> multilevel_bisect(const graph::Csr& g, double fraction0,
                                      const Options& opts, Rng& rng,
                                      weight_t& cut_out, ThreadPool* pool) {
  TAMP_EXPECTS(g.num_vertices() >= 2, "cannot bisect fewer than 2 vertices");
  TAMP_TRACE_SCOPE("partition/bisect");

  // --- coarsening phase ---------------------------------------------------
  // Keep the ladder of levels; stop when small enough or when matching
  // stalls (reduction < 10 %, typical on graphs with many isolated
  // vertices).
  std::vector<CoarseLevel> ladder;
  {
    TAMP_TRACE_SCOPE("partition/coarsen");
    const graph::Csr* current = &g;
    while (current->num_vertices() > opts.coarsen_to && ladder.size() < 64) {
      CoarseLevel level = coarsen_once(*current, rng, pool);
      // Stalled matching (< 2 % reduction) means further levels are wasted
      // work: discard this level and partition what we have.
      if (static_cast<double>(level.graph.num_vertices()) >
          0.98 * static_cast<double>(current->num_vertices()))
        break;
      ladder.push_back(std::move(level));
      current = &ladder.back().graph;
    }
  }

  // --- initial partitioning at the coarsest level --------------------------
  const graph::Csr& coarsest = ladder.empty() ? g : ladder.back().graph;
  BalanceSpec coarse_spec(coarsest, fraction0, opts.tolerance, pool);
  std::vector<part_t> part;
  {
    TAMP_TRACE_SCOPE("partition/initial");
    part = greedy_growing_bisection(coarsest, coarse_spec, rng,
                                    opts.initial_trials);
    fm_refine_bisection(coarsest, part, coarse_spec, rng, opts.refine_passes);
  }

  // --- uncoarsening + refinement -------------------------------------------
  {
    TAMP_TRACE_SCOPE("partition/refine");
    for (std::size_t li = ladder.size(); li-- > 0;) {
      const graph::Csr& fine = li == 0 ? g : ladder[li - 1].graph;
      const std::vector<index_t>& f2c = ladder[li].fine_to_coarse;
      std::vector<part_t> fine_part(
          static_cast<std::size_t>(fine.num_vertices()));
      parallel_for(pool, 0, fine.num_vertices(), 16384,
                   [&](std::int64_t b, std::int64_t e) {
                     for (std::int64_t v = b; v < e; ++v)
                       fine_part[static_cast<std::size_t>(v)] = part
                           [static_cast<std::size_t>(
                               f2c[static_cast<std::size_t>(v)])];
                   });
      part = std::move(fine_part);
      BalanceSpec spec(fine, fraction0, opts.tolerance, pool);
      fm_refine_bisection(fine, part, spec, rng, opts.refine_passes);
    }
  }

  cut_out = edge_cut(g, part);
  return part;
}

}  // namespace tamp::partition
