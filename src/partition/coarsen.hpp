// Coarsening stage of the multilevel partitioner.
//
// Heavy-edge matching (HEM): visit vertices in random order; an unmatched
// vertex matches its unmatched neighbour connected by the heaviest edge.
// Matched pairs are contracted into coarse vertices whose weight vectors
// are the component-wise sums and whose parallel edges merge by adding
// weights — so a bisection of the coarse graph has the same cut and the
// same constraint loads as its projection to the fine graph.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace tamp::partition {

/// One coarsening level: the coarse graph plus the fine→coarse map.
struct CoarseLevel {
  graph::Csr graph;
  std::vector<index_t> fine_to_coarse;
};

/// Compute a heavy-edge matching. Returns match[v] = partner vertex, or v
/// itself when unmatched.
std::vector<index_t> heavy_edge_matching(const graph::Csr& g, Rng& rng);

/// Contract a matching into a coarse graph. With a pool, coarse rows are
/// built in parallel over chunks of coarse vertices; the merged-edge
/// order within a row depends only on the matching, so the parallel
/// output is bit-identical to the serial one.
CoarseLevel contract(const graph::Csr& g, const std::vector<index_t>& match,
                     ThreadPool* pool = nullptr);

/// Convenience: one HEM + contraction step. The matching itself stays
/// sequential (its greedy visit order is part of the deterministic RNG
/// stream); only the contraction is parallelized.
CoarseLevel coarsen_once(const graph::Csr& g, Rng& rng,
                         ThreadPool* pool = nullptr);

}  // namespace tamp::partition
