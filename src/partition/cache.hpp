// Decomposition cache — the reuse layer of the online repartitioning
// service. A service that partitions a stream of prep requests sees the
// same (mesh, strategy, parameters) tuple again and again: meshes drift
// slowly and drift often revisits earlier level configurations.
// Recomputing a multilevel decomposition (plus the locality permutation
// derived from it) on every request wastes almost the entire prep
// budget; this cache makes the warm path a hash lookup.
//
// Keying contract (see DESIGN.md):
//   * the mesh enters the key by *content hash* — topology (face→cell
//     pairs), cell levels, and cell centroids. Centroids are part of the
//     key because the locality permutation orders cells along a
//     space-filling curve over them; two meshes with identical topology
//     but different geometry must not share a permutation.
//   * every parameter the decomposition is a function of joins the key:
//     strategy, ndomains, nprocesses, tolerance, seed, and the resolved
//     thread count (the partitioner is bit-identical across thread
//     counts, but the key keeps the field so that property is never a
//     silent correctness assumption of the cache).
//
// Invalidation is purely key-based: a mesh whose levels drifted hashes
// differently and misses; no entry is ever mutated in place (values are
// shared_ptr<const ...>), so concurrent pipelines may hold hits while
// eviction rotates the LRU list.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "mesh/mesh.hpp"
#include "mesh/reorder.hpp"
#include "partition/reorder.hpp"
#include "partition/strategy.hpp"

namespace tamp::partition {

/// FNV-1a fold of everything the decomposition reads from the mesh:
/// counts, face→cell topology, cell levels, and cell centroids.
[[nodiscard]] std::uint64_t mesh_content_hash(const mesh::Mesh& mesh);

/// Full cache key: mesh content plus every decomposition parameter.
struct CacheKey {
  std::uint64_t mesh_hash = 0;
  Strategy strategy = Strategy::sc_oc;
  part_t ndomains = 0;
  part_t nprocesses = 0;
  double tolerance = 0;
  std::uint64_t seed = 0;
  int threads = 0;

  [[nodiscard]] bool operator==(const CacheKey& o) const {
    return mesh_hash == o.mesh_hash && strategy == o.strategy &&
           ndomains == o.ndomains && nprocesses == o.nprocesses &&
           tolerance == o.tolerance && seed == o.seed && threads == o.threads;
  }
  [[nodiscard]] std::uint64_t hash() const;
};

/// Key for decomposing `mesh` under `opts` (hashes the mesh; resolves
/// the thread count the partitioner would use).
[[nodiscard]] CacheKey make_cache_key(const mesh::Mesh& mesh,
                                      const StrategyOptions& opts);

/// One cached prep product: the decomposition and (optionally) the
/// locality permutation derived from it. Immutable once published.
struct CachedDecomposition {
  DomainDecomposition decomposition;
  mesh::MeshPermutation permutation;  ///< empty unless with_permutation
  bool with_permutation = false;
  std::size_t bytes = 0;  ///< estimated footprint, set on publish

  /// Recompute the footprint estimate from current vector sizes.
  [[nodiscard]] std::size_t estimate_bytes() const;
};

/// Thread-safe LRU + byte-budget cache of decompositions, shared by
/// every pipeline of a service process.
///
/// Concurrency: one mutex guards the map/LRU/stats; values are
/// shared_ptr<const CachedDecomposition>, so readers keep entries alive
/// across eviction. Concurrent misses on the SAME key are single-flight:
/// the first caller computes, the rest block on a condition variable and
/// share the result (counted as inflight_joins — they paid a wait, not a
/// compute). Misses on different keys compute concurrently outside the
/// lock.
class DecompositionCache {
public:
  struct Options {
    std::size_t max_bytes = 256ULL << 20;  ///< byte budget before eviction
    std::size_t max_entries = 64;
    /// Admission control: reject entries larger than this fraction of
    /// max_bytes instead of flushing the whole LRU for one giant mesh.
    /// The computed value is still returned to the caller.
    double admit_max_fraction = 0.5;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;        ///< failed admission control
    std::uint64_t inflight_joins = 0;  ///< waited on another caller's miss
    std::size_t entries = 0;
    std::size_t bytes = 0;

    /// Requests served without computing (hits + joined flights) over
    /// all requests.
    [[nodiscard]] double served_rate() const {
      const std::uint64_t total = hits + misses + inflight_joins;
      return total == 0
                 ? 0.0
                 : static_cast<double>(hits + inflight_joins) /
                       static_cast<double>(total);
    }
  };

  using Value = std::shared_ptr<const CachedDecomposition>;

  DecompositionCache();  ///< default Options
  explicit DecompositionCache(Options opts);

  /// Lookup without computing (touches LRU on hit; counts hit/miss).
  [[nodiscard]] Value find(const CacheKey& key);

  /// Hit, or run `compute` (outside the lock) and publish the result.
  /// Concurrent callers with the same key share one computation.
  [[nodiscard]] Value get_or_compute(
      const CacheKey& key, const std::function<CachedDecomposition()>& compute);

  void clear();
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Options& options() const { return opts_; }

  /// Export counters/gauges as `<prefix>.hits`, `.misses`, `.evictions`,
  /// `.rejected`, `.inflight_joins`, `.entries`, `.bytes`, `.hit_rate`.
  void publish_metrics(const std::string& prefix = "partition.cache") const;

private:
  struct Entry {
    CacheKey key;
    Value value;
  };
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.hash());
    }
  };
  struct Inflight {
    bool done = false;
    Value value;
    std::exception_ptr error;
  };

  void touch(std::list<Entry>::iterator it);
  void insert_locked(const CacheKey& key, const Value& value);
  void evict_locked();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<Entry> lru_;  ///< most-recently-used first
  std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index_;
  std::unordered_map<CacheKey, std::shared_ptr<Inflight>, KeyHash> inflight_;
  Stats stats_;
};

/// Cached wrapper around decompose() (+ build_locality_permutation when
/// `with_permutation`). The cache may be null: then this just computes.
[[nodiscard]] DecompositionCache::Value decompose_cached(
    const mesh::Mesh& mesh, const StrategyOptions& opts,
    DecompositionCache* cache, bool with_permutation = false);

}  // namespace tamp::partition
