// Incremental repartitioning after the vertex weights drift.
//
// Production context: FLUSEPA's temporal levels evolve slowly between
// iterations (§III-A). Repartitioning from scratch every time would move
// most of the mesh between processes; incremental repartitioning starts
// from the previous assignment, restores per-constraint balance with
// targeted moves, then locally improves the cut — touching only a small
// fraction of cells (the *migration volume*, which in a distributed run
// is data physically shipped between nodes).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tamp::partition {

struct IncrementalOptions {
  double tolerance = 0.05;  ///< per-constraint balance tolerance
  int refine_passes = 4;
  std::uint64_t seed = 1;
  /// Number of vertices whose weights actually changed since the
  /// previous assignment, when the caller knows it (< 0 = unknown).
  /// Zero short-circuits the whole run: the previous assignment is
  /// provably still optimal under unchanged weights, so it is reused
  /// verbatim (no rebalance, no refinement, no RNG draws).
  index_t dirty_vertices = -1;
};

struct IncrementalReport {
  index_t migrated_vertices = 0;  ///< vertices whose part changed
  weight_t cut_before = 0;
  weight_t cut_after = 0;
  double imbalance_before = 0;    ///< worst constraint, on the new weights
  double imbalance_after = 0;
  /// True when dirty_vertices == 0 skipped the run and the previous
  /// assignment was returned untouched.
  bool reused_verbatim = false;
};

/// Repartition `g` (whose weights have changed) starting from `part`.
/// `part` is updated in place; the report quantifies migration and
/// quality. The graph topology must match the old assignment (same
/// vertex ids).
IncrementalReport incremental_repartition(const graph::Csr& g,
                                          std::vector<part_t>& part,
                                          part_t nparts,
                                          const IncrementalOptions& opts = {});

}  // namespace tamp::partition
