#include "partition/reorder.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <tuple>

#include "partition/sfc.hpp"
#include "support/check.hpp"
#include "taskgraph/taskgraph.hpp"

namespace tamp::partition {

const char* to_string(Reorder r) {
  switch (r) {
    case Reorder::none: return "none";
    case Reorder::locality: return "locality";
  }
  return "?";
}

Reorder parse_reorder(const std::string& name) {
  if (name == "none") return Reorder::none;
  if (name == "locality") return Reorder::locality;
  throw precondition_error("unknown reorder mode '" + name +
                           "' (expected none|locality)");
}

namespace {

/// Dense class id with the same formula and ordering as the task
/// generator's ClassIndexer: (domain, level τ, locality), external
/// before internal. Keeping the formulas in lockstep is what makes
/// every class list contiguous after renumbering.
index_t class_id(part_t d, level_t tau, taskgraph::Locality loc,
                 level_t nlev) {
  return (d * static_cast<index_t>(nlev) + static_cast<index_t>(tau)) * 2 +
         static_cast<index_t>(loc);
}

/// Hilbert index of every cell centroid, normalised to the mesh bounds.
std::vector<std::uint64_t> cell_hilbert_indices(const mesh::Mesh& mesh) {
  const index_t n = mesh.num_cells();
  mesh::Vec3 lo{std::numeric_limits<double>::max(),
                std::numeric_limits<double>::max(),
                std::numeric_limits<double>::max()};
  mesh::Vec3 hi{-lo.x, -lo.y, -lo.z};
  for (index_t c = 0; c < n; ++c) {
    const mesh::Vec3 p = mesh.cell_centroid(c);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }
  const mesh::Vec3 span{std::max(hi.x - lo.x, 1e-300),
                        std::max(hi.y - lo.y, 1e-300),
                        std::max(hi.z - lo.z, 1e-300)};
  std::vector<std::uint64_t> h(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    const mesh::Vec3 p = mesh.cell_centroid(c);
    h[static_cast<std::size_t>(c)] =
        hilbert_index_3d((p.x - lo.x) / span.x, (p.y - lo.y) / span.y,
                         (p.z - lo.z) / span.z);
  }
  return h;
}

}  // namespace

mesh::MeshPermutation build_locality_permutation(
    const mesh::Mesh& mesh, const std::vector<part_t>& domain_of_cell,
    part_t ndomains) {
  const index_t ncells = mesh.num_cells();
  const index_t nfaces = mesh.num_faces();
  TAMP_EXPECTS(domain_of_cell.size() == static_cast<std::size_t>(ncells),
               "domain vector size must equal cell count");
  TAMP_EXPECTS(ndomains >= 1, "need at least one domain");
  for (const part_t d : domain_of_cell)
    TAMP_EXPECTS(d >= 0 && d < ndomains, "domain id out of range");
  const auto nlev = static_cast<level_t>(mesh.max_level() + 1);

  // Cell locality, by the task generator's rule: external when any
  // interior face leads to another domain.
  std::vector<taskgraph::Locality> cell_loc(static_cast<std::size_t>(ncells),
                                            taskgraph::Locality::internal);
  for (index_t f = 0; f < nfaces; ++f) {
    if (mesh.is_boundary_face(f)) continue;
    const index_t a = mesh.face_cell(f, 0);
    const index_t b = mesh.face_cell(f, 1);
    if (domain_of_cell[static_cast<std::size_t>(a)] !=
        domain_of_cell[static_cast<std::size_t>(b)]) {
      cell_loc[static_cast<std::size_t>(a)] = taskgraph::Locality::external;
      cell_loc[static_cast<std::size_t>(b)] = taskgraph::Locality::external;
    }
  }

  const std::vector<std::uint64_t> hilbert = cell_hilbert_indices(mesh);

  // --- cells: domain-major, class-minor, SFC within the class ------------
  mesh::MeshPermutation perm;
  perm.cell_new_to_old.resize(static_cast<std::size_t>(ncells));
  std::iota(perm.cell_new_to_old.begin(), perm.cell_new_to_old.end(), 0);
  auto cell_key = [&](index_t c) {
    const auto sc = static_cast<std::size_t>(c);
    return std::make_tuple(
        class_id(domain_of_cell[sc], mesh.cell_level(c), cell_loc[sc], nlev),
        hilbert[sc], c);
  };
  std::sort(perm.cell_new_to_old.begin(), perm.cell_new_to_old.end(),
            [&](index_t a, index_t b) { return cell_key(a) < cell_key(b); });
  perm.cell_old_to_new = mesh::invert_permutation(perm.cell_new_to_old);

  // --- faces: class-major, interior before boundary, stream-ordered ------
  // Face class mirrors the generator: owner = lower adjacent domain
  // (the cell's own domain at a physical boundary), level = face level,
  // external when the adjacent cells' domains differ. Interior faces of
  // a class come first so the boundary branch hoists into a tail
  // sub-range; within each sub-range faces follow the renumbered id of
  // their side-0 cell, which makes the flux sweep's cell reads advance
  // monotonically through the adjacent cell ranges.
  perm.face_new_to_old.resize(static_cast<std::size_t>(nfaces));
  std::iota(perm.face_new_to_old.begin(), perm.face_new_to_old.end(), 0);
  auto face_key = [&](index_t f) {
    const index_t a = mesh.face_cell(f, 0);
    const part_t da = domain_of_cell[static_cast<std::size_t>(a)];
    const bool boundary = mesh.is_boundary_face(f);
    part_t owner = da;
    auto loc = taskgraph::Locality::internal;
    index_t stream = perm.cell_old_to_new[static_cast<std::size_t>(a)];
    if (!boundary) {
      const index_t b = mesh.face_cell(f, 1);
      const part_t db = domain_of_cell[static_cast<std::size_t>(b)];
      owner = std::min(da, db);
      if (da != db) loc = taskgraph::Locality::external;
      stream = std::min(
          stream, perm.cell_old_to_new[static_cast<std::size_t>(b)]);
    }
    return std::make_tuple(class_id(owner, mesh.face_level(f), loc, nlev),
                           boundary ? 1 : 0, stream, f);
  };
  std::sort(perm.face_new_to_old.begin(), perm.face_new_to_old.end(),
            [&](index_t a, index_t b) { return face_key(a) < face_key(b); });
  perm.face_old_to_new = mesh::invert_permutation(perm.face_new_to_old);
  return perm;
}

ReorderedDecomposition reorder_for_locality(
    const mesh::Mesh& mesh, const std::vector<part_t>& domain_of_cell,
    part_t ndomains) {
  mesh::MeshPermutation perm =
      build_locality_permutation(mesh, domain_of_cell, ndomains);
  mesh::Mesh permuted = mesh::permute_mesh(mesh, perm);
  std::vector<part_t> domains =
      mesh::permute_cell_values(domain_of_cell, perm);
  return {std::move(permuted), std::move(perm), std::move(domains)};
}

}  // namespace tamp::partition
