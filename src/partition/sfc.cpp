#include "partition/sfc.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mesh/levels.hpp"

namespace tamp::partition {

namespace {

/// Skilling's transpose-to-Hilbert conversion for 3 dimensions:
/// `coords` holds one quantised coordinate per axis; on return it holds
/// the transposed Hilbert index (bit b of axis a is bit 3·b+a of the
/// final index).
void axes_to_transpose(std::uint32_t coords[3], int bits) {
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < 3; ++i) {
      if (coords[i] & q) {
        coords[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (coords[0] ^ coords[i]) & p;
        coords[0] ^= t;
        coords[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) coords[i] ^= coords[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (coords[2] & q) t ^= q - 1;
  for (int i = 0; i < 3; ++i) coords[i] ^= t;
}

}  // namespace

std::uint64_t hilbert_index_3d(double x, double y, double z, int bits) {
  TAMP_EXPECTS(bits >= 1 && bits <= 21, "bits per axis must be in [1,21]");
  auto quantise = [&](double v) {
    v = std::clamp(v, 0.0, 1.0);
    const double scaled = v * static_cast<double>((1u << bits) - 1);
    return static_cast<std::uint32_t>(std::llround(scaled));
  };
  std::uint32_t coords[3] = {quantise(x), quantise(y), quantise(z)};
  axes_to_transpose(coords, bits);
  // Interleave the transposed bits, axis 0 most significant.
  std::uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < 3; ++i)
      index = index << 1 | ((coords[i] >> b) & 1u);
  return index;
}

std::vector<part_t> sfc_partition(const mesh::Mesh& mesh,
                                  const std::vector<weight_t>& weights,
                                  part_t nparts) {
  const index_t n = mesh.num_cells();
  TAMP_EXPECTS(weights.size() == static_cast<std::size_t>(n),
               "weight vector size must equal cell count");
  TAMP_EXPECTS(nparts >= 1 && nparts <= n, "invalid part count");

  // Normalise centroids into the unit cube.
  mesh::Vec3 lo{std::numeric_limits<double>::max(),
                std::numeric_limits<double>::max(),
                std::numeric_limits<double>::max()};
  mesh::Vec3 hi{-lo.x, -lo.y, -lo.z};
  for (index_t c = 0; c < n; ++c) {
    const mesh::Vec3 p = mesh.cell_centroid(c);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
  }
  const mesh::Vec3 span{std::max(hi.x - lo.x, 1e-300),
                        std::max(hi.y - lo.y, 1e-300),
                        std::max(hi.z - lo.z, 1e-300)};

  std::vector<std::pair<std::uint64_t, index_t>> order(
      static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    const mesh::Vec3 p = mesh.cell_centroid(c);
    order[static_cast<std::size_t>(c)] = {
        hilbert_index_3d((p.x - lo.x) / span.x, (p.y - lo.y) / span.y,
                         (p.z - lo.z) / span.z),
        c};
  }
  std::sort(order.begin(), order.end());

  const weight_t total =
      std::accumulate(weights.begin(), weights.end(), weight_t{0});
  std::vector<part_t> part(static_cast<std::size_t>(n), 0);
  weight_t running = 0;
  part_t current = 0;
  for (const auto& [key, c] : order) {
    // Advance to the next part when the running prefix passes the
    // proportional boundary; guarantees every part non-empty by also
    // bounding by remaining cells.
    const weight_t boundary = static_cast<weight_t>(
        (static_cast<__int128>(total) * (current + 1) + nparts - 1) / nparts);
    if (running >= boundary && current + 1 < nparts) ++current;
    part[static_cast<std::size_t>(c)] = current;
    running += weights[static_cast<std::size_t>(c)];
  }
  // Non-emptiness backstop for degenerate weight layouts: sweep from the
  // back, stealing one cell into any empty trailing part.
  std::vector<index_t> count(static_cast<std::size_t>(nparts), 0);
  for (const part_t p : part) ++count[static_cast<std::size_t>(p)];
  for (part_t p = nparts - 1; p > 0; --p) {
    if (count[static_cast<std::size_t>(p)] == 0) {
      // take the last cell (in SFC order) currently in some earlier part
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        part_t& q = part[static_cast<std::size_t>(it->second)];
        if (q < p && count[static_cast<std::size_t>(q)] > 1) {
          --count[static_cast<std::size_t>(q)];
          q = p;
          ++count[static_cast<std::size_t>(p)];
          break;
        }
      }
    }
  }
  return part;
}

std::vector<part_t> sfc_partition_operating_cost(const mesh::Mesh& mesh,
                                                 part_t nparts) {
  std::vector<weight_t> weights(static_cast<std::size_t>(mesh.num_cells()));
  for (index_t c = 0; c < mesh.num_cells(); ++c)
    weights[static_cast<std::size_t>(c)] =
        mesh::operating_cost(mesh.cell_level(c), mesh.max_level());
  return sfc_partition(mesh, weights, nparts);
}

}  // namespace tamp::partition
