#include "partition/incremental.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"

namespace tamp::partition {

IncrementalReport incremental_repartition(const graph::Csr& g,
                                          std::vector<part_t>& part,
                                          part_t nparts,
                                          const IncrementalOptions& opts) {
  TAMP_TRACE_SCOPE("partition/incremental");
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(n),
               "partition vector size mismatch");
  const int nc = g.num_constraints();

  IncrementalReport report;
  if (opts.dirty_vertices == 0) {
    // No vertex weight changed: the previous assignment is still exactly
    // as balanced and as cut-optimal as it was, so reuse it verbatim.
    report.cut_before = report.cut_after = edge_cut(g, part);
    report.imbalance_before = report.imbalance_after =
        max_imbalance(g, part, nparts);
    report.reused_verbatim = true;
    TAMP_METRIC_COUNT("partition.incremental.reused_verbatim", 1);
    return report;
  }

  const std::vector<part_t> before = part;
  report.cut_before = edge_cut(g, part);
  report.imbalance_before = max_imbalance(g, part, nparts);

  // Allowances on the *new* weights.
  const auto totals = g.total_weights();
  std::vector<weight_t> max_vwgt(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < n; ++v) {
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < nc; ++c)
      max_vwgt[static_cast<std::size_t>(c)] =
          std::max(max_vwgt[static_cast<std::size_t>(c)],
                   w[static_cast<std::size_t>(c)]);
  }
  std::vector<weight_t> allowed(static_cast<std::size_t>(nparts) *
                                static_cast<std::size_t>(nc));
  for (part_t p = 0; p < nparts; ++p) {
    for (int c = 0; c < nc; ++c) {
      const double ideal =
          static_cast<double>(totals[static_cast<std::size_t>(c)]) /
          static_cast<double>(nparts);
      allowed[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)] =
          static_cast<weight_t>(std::llround(ideal * (1.0 + opts.tolerance))) +
          max_vwgt[static_cast<std::size_t>(c)];
    }
  }

  std::vector<weight_t> loads = part_loads(g, part, nparts);
  auto overshoot = [&](part_t p, int c) {
    return loads[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)] -
           allowed[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)];
  };

  // --- phase 1: restore balance with targeted migrations --------------------
  const index_t max_moves = 4 * n / std::max<part_t>(nparts, 1) + 1024;
  {
    TAMP_TRACE_SCOPE("partition/incremental/rebalance");
    for (index_t move = 0; move < max_moves; ++move) {
      // Worst (part, constraint) overshoot.
      part_t worst_p = invalid_part;
      int worst_c = -1;
      weight_t worst_over = 0;
      for (part_t p = 0; p < nparts; ++p) {
        for (int c = 0; c < nc; ++c) {
          const weight_t over = overshoot(p, c);
          if (over > worst_over) {
            worst_over = over;
            worst_p = p;
            worst_c = c;
          }
        }
      }
      if (worst_p == invalid_part) break;  // balanced

      // Best migration: a vertex of worst_p carrying weight in worst_c,
      // moved to an adjacent (preferred) part that stays feasible on every
      // constraint; maximise cut gain among candidates.
      index_t best_v = invalid_index;
      part_t best_dest = invalid_part;
      weight_t best_gain = std::numeric_limits<weight_t>::min();
      for (index_t v = 0; v < n; ++v) {
        if (part[static_cast<std::size_t>(v)] != worst_p) continue;
        const auto w = g.vertex_weights(v);
        if (w[static_cast<std::size_t>(worst_c)] <= 0) continue;
        // Connectivity per adjacent part.
        const auto nbrs = g.neighbors(v);
        const auto wgts = g.edge_weights(v);
        weight_t internal = 0;
        for (std::size_t i = 0; i < nbrs.size(); ++i)
          if (part[static_cast<std::size_t>(nbrs[i])] == worst_p)
            internal += wgts[i];
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const part_t q = part[static_cast<std::size_t>(nbrs[i])];
          if (q == worst_p) continue;
          bool fits = true;
          for (int c = 0; c < nc; ++c) {
            const auto idx =
                static_cast<std::size_t>(q) * nc + static_cast<std::size_t>(c);
            if (loads[idx] + w[static_cast<std::size_t>(c)] > allowed[idx]) {
              fits = false;
              break;
            }
          }
          if (!fits) continue;
          weight_t external = 0;
          for (std::size_t j = 0; j < nbrs.size(); ++j)
            if (part[static_cast<std::size_t>(nbrs[j])] == q)
              external += wgts[j];
          const weight_t gain = external - internal;
          if (gain > best_gain) {
            best_gain = gain;
            best_v = v;
            best_dest = q;
          }
        }
      }
      if (best_v == invalid_index) break;  // no feasible rebalancing move
      const auto w = g.vertex_weights(best_v);
      for (int c = 0; c < nc; ++c) {
        const auto sc = static_cast<std::size_t>(c);
        loads[static_cast<std::size_t>(worst_p) * nc + sc] -= w[sc];
        loads[static_cast<std::size_t>(best_dest) * nc + sc] += w[sc];
      }
      part[static_cast<std::size_t>(best_v)] = best_dest;
    }
  }

  // --- phase 2: local cut refinement under the same allowances --------------
  {
    TAMP_TRACE_SCOPE("partition/incremental/refine");
    Rng rng(opts.seed);
    kway_refine(g, part, nparts, allowed, rng, opts.refine_passes);
  }

  for (index_t v = 0; v < n; ++v)
    if (part[static_cast<std::size_t>(v)] != before[static_cast<std::size_t>(v)])
      ++report.migrated_vertices;
  report.cut_after = edge_cut(g, part);
  report.imbalance_after = max_imbalance(g, part, nparts);
  TAMP_METRIC_COUNT("partition.incremental.migrated_vertices",
                    report.migrated_vertices);
  TAMP_METRIC_GAUGE_SET("partition.incremental.cut_after", report.cut_after);
  TAMP_METRIC_GAUGE_SET("partition.incremental.imbalance_after",
                        report.imbalance_after);
  return report;
}

}  // namespace tamp::partition
