#include <algorithm>

#include "partition/partition.hpp"

namespace tamp::partition {

double Result::imbalance(int constraint) const {
  TAMP_EXPECTS(constraint >= 0 && constraint < ncon, "constraint out of range");
  weight_t total = 0;
  weight_t worst = 0;
  for (part_t p = 0; p < nparts; ++p) {
    const weight_t w = loads[static_cast<std::size_t>(p) * ncon +
                             static_cast<std::size_t>(constraint)];
    total += w;
    worst = std::max(worst, w);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(worst) * static_cast<double>(nparts) /
         static_cast<double>(total);
}

double Result::max_imbalance() const {
  double worst = 1.0;
  for (int c = 0; c < ncon; ++c) worst = std::max(worst, imbalance(c));
  return worst;
}

weight_t edge_cut(const graph::Csr& g, const std::vector<part_t>& part) {
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(g.num_vertices()),
               "partition vector size mismatch");
  weight_t cut = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[static_cast<std::size_t>(v)] !=
          part[static_cast<std::size_t>(nbrs[i])])
        cut += wgts[i];
    }
  }
  return cut / 2;
}

std::vector<weight_t> part_loads(const graph::Csr& g,
                                 const std::vector<part_t>& part,
                                 part_t nparts) {
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(g.num_vertices()),
               "partition vector size mismatch");
  const int ncon = g.num_constraints();
  std::vector<weight_t> loads(
      static_cast<std::size_t>(nparts) * static_cast<std::size_t>(ncon), 0);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const part_t p = part[static_cast<std::size_t>(v)];
    TAMP_EXPECTS(p >= 0 && p < nparts, "part id out of range");
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < ncon; ++c)
      loads[static_cast<std::size_t>(p) * ncon + static_cast<std::size_t>(c)] +=
          w[static_cast<std::size_t>(c)];
  }
  return loads;
}

double max_imbalance(const graph::Csr& g, const std::vector<part_t>& part,
                     part_t nparts) {
  Result r;
  r.part = part;
  r.loads = part_loads(g, part, nparts);
  r.nparts = nparts;
  r.ncon = g.num_constraints();
  return r.max_imbalance();
}

weight_t interprocess_comm(const graph::Csr& g, const std::vector<part_t>& part,
                           const std::vector<part_t>& domain_to_process) {
  weight_t volume = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    const part_t dv = part[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const part_t du = part[static_cast<std::size_t>(nbrs[i])];
      if (dv == du) continue;
      TAMP_EXPECTS(static_cast<std::size_t>(dv) < domain_to_process.size() &&
                       static_cast<std::size_t>(du) < domain_to_process.size(),
                   "domain id outside process map");
      if (domain_to_process[static_cast<std::size_t>(dv)] !=
          domain_to_process[static_cast<std::size_t>(du)])
        volume += wgts[i];
    }
  }
  return volume / 2;
}

}  // namespace tamp::partition
