#include "partition/strategy.hpp"

#include <algorithm>
#include <string>

#include "graph/builder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace tamp::partition {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::sc_cells: return "SC_CELLS";
    case Strategy::sc_oc: return "SC_OC";
    case Strategy::mc_tl: return "MC_TL";
    case Strategy::hybrid: return "HYBRID";
  }
  return "?";
}

Strategy parse_strategy(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "sc_cells") return Strategy::sc_cells;
  if (lower == "sc_oc") return Strategy::sc_oc;
  if (lower == "mc_tl") return Strategy::mc_tl;
  if (lower == "hybrid") return Strategy::hybrid;
  throw precondition_error("unknown strategy: " + name +
                           " (expected sc_cells|sc_oc|mc_tl|hybrid)");
}

weight_t DomainDecomposition::total_cost(part_t d) const {
  weight_t total = 0;
  for (level_t tau = 0; tau < num_levels; ++tau) total += cost_in(d, tau);
  return total;
}

double DomainDecomposition::level_imbalance() const {
  double worst = 1.0;
  for (level_t tau = 0; tau < num_levels; ++tau) {
    weight_t total = 0, max_d = 0;
    for (part_t d = 0; d < ndomains; ++d) {
      total += cells_in(d, tau);
      max_d = std::max<weight_t>(max_d, cells_in(d, tau));
    }
    if (total == 0) continue;
    worst = std::max(worst, static_cast<double>(max_d) *
                                static_cast<double>(ndomains) /
                                static_cast<double>(total));
  }
  return worst;
}

double DomainDecomposition::cost_imbalance() const {
  weight_t total = 0, max_d = 0;
  for (part_t d = 0; d < ndomains; ++d) {
    total += total_cost(d);
    max_d = std::max(max_d, total_cost(d));
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max_d) * static_cast<double>(ndomains) /
         static_cast<double>(total);
}

namespace {

graph::Csr build_weighted_dual(const mesh::Mesh& mesh, Strategy strategy) {
  const level_t nlev = static_cast<level_t>(mesh.max_level() + 1);
  const int ncon = strategy == Strategy::mc_tl ? nlev : 1;
  graph::Builder b(mesh.num_cells(), ncon);
  for (index_t f = 0; f < mesh.num_faces(); ++f)
    if (!mesh.is_boundary_face(f))
      b.add_edge(mesh.face_cell(f, 0), mesh.face_cell(f, 1));

  switch (strategy) {
    case Strategy::sc_cells:
      break;  // builder default weight 1
    case Strategy::sc_oc:
      for (index_t c = 0; c < mesh.num_cells(); ++c)
        b.set_vertex_weight(
            c, 0,
            mesh::operating_cost(mesh.cell_level(c),
                                 static_cast<level_t>(nlev - 1)));
      break;
    case Strategy::mc_tl:
      // Binary indicator vectors (paper §V): exactly one 1 per cell, in
      // the slot of its temporal level.
      for (index_t c = 0; c < mesh.num_cells(); ++c) {
        for (level_t l = 0; l < nlev; ++l) b.set_vertex_weight(c, l, 0);
        b.set_vertex_weight(c, mesh.cell_level(c), 1);
      }
      break;
    case Strategy::hybrid:
      throw precondition_error(
          "HYBRID composes MC_TL and SC_OC phases; no single graph exists");
  }
  return b.build();
}

void fill_census(const mesh::Mesh& mesh, DomainDecomposition& dd) {
  dd.num_levels = static_cast<level_t>(mesh.max_level() + 1);
  dd.cells_by_level.assign(static_cast<std::size_t>(dd.ndomains) *
                               static_cast<std::size_t>(dd.num_levels),
                           0);
  for (index_t c = 0; c < mesh.num_cells(); ++c) {
    const part_t d = dd.domain_of_cell[static_cast<std::size_t>(c)];
    ++dd.cells_by_level[static_cast<std::size_t>(d) * dd.num_levels +
                        static_cast<std::size_t>(mesh.cell_level(c))];
  }
  dd.edge_cut = 0;
  for (index_t f = 0; f < mesh.num_faces(); ++f) {
    if (mesh.is_boundary_face(f)) continue;
    if (dd.domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 0))] !=
        dd.domain_of_cell[static_cast<std::size_t>(mesh.face_cell(f, 1))])
      ++dd.edge_cut;
  }
}

DomainDecomposition decompose_hybrid(const mesh::Mesh& mesh,
                                     const StrategyOptions& opts) {
  const part_t nproc = opts.nprocesses > 0 ? opts.nprocesses : opts.ndomains;
  TAMP_EXPECTS(opts.ndomains % nproc == 0,
               "HYBRID requires ndomains to be a multiple of nprocesses");
  const part_t per_proc = opts.ndomains / nproc;

  // Phase 1: MC_TL across processes (one domain per process).
  StrategyOptions phase1 = opts;
  phase1.strategy = Strategy::mc_tl;
  phase1.ndomains = nproc;
  phase1.nprocesses = nproc;
  DomainDecomposition coarse = decompose(mesh, phase1);
  if (per_proc == 1) return coarse;

  // Phase 2: SC_OC inside each process domain, refining granularity
  // without adding inter-process interfaces.
  DomainDecomposition dd;
  dd.ndomains = opts.ndomains;
  dd.domain_of_cell.assign(static_cast<std::size_t>(mesh.num_cells()),
                           invalid_part);

  graph::Csr oc_graph = build_weighted_dual(mesh, Strategy::sc_oc);
  for (part_t p = 0; p < nproc; ++p) {
    std::vector<char> mask(static_cast<std::size_t>(mesh.num_cells()), 0);
    index_t count = 0;
    for (index_t c = 0; c < mesh.num_cells(); ++c) {
      if (coarse.domain_of_cell[static_cast<std::size_t>(c)] == p) {
        mask[static_cast<std::size_t>(c)] = 1;
        ++count;
      }
    }
    std::vector<index_t> old_to_new, new_to_old;
    graph::Csr sub = graph::induced_subgraph(oc_graph, mask, old_to_new,
                                             new_to_old);
    Options popts = opts.partitioner;
    popts.nparts = per_proc;
    popts.seed = opts.partitioner.seed + 1000003ULL * static_cast<std::uint64_t>(p + 1);
    if (sub.num_vertices() < 2 * per_proc) {
      for (std::size_t i = 0; i < new_to_old.size(); ++i)
        dd.domain_of_cell[static_cast<std::size_t>(new_to_old[i])] =
            p * per_proc + static_cast<part_t>(i % static_cast<std::size_t>(per_proc));
      continue;
    }
    Result r = partition_graph(sub, popts);
    for (index_t v = 0; v < sub.num_vertices(); ++v)
      dd.domain_of_cell[static_cast<std::size_t>(new_to_old[static_cast<std::size_t>(v)])] =
          p * per_proc + r.part[static_cast<std::size_t>(v)];
  }
  fill_census(mesh, dd);
  return dd;
}

/// Publish decomposition-quality gauges, including the per-level cell
/// imbalance the paper's census figures plot (partition.level_imbalance.l<τ>).
void record_decomposition_metrics(const DomainDecomposition& dd) {
#if defined(TAMP_TRACING_ENABLED)
  obs::gauge("partition.level_imbalance").set(dd.level_imbalance());
  obs::gauge("partition.cost_imbalance").set(dd.cost_imbalance());
  obs::gauge("partition.edge_cut").set(static_cast<double>(dd.edge_cut));
  for (level_t tau = 0; tau < dd.num_levels; ++tau) {
    weight_t total = 0, max_d = 0;
    for (part_t d = 0; d < dd.ndomains; ++d) {
      total += dd.cells_in(d, tau);
      max_d = std::max<weight_t>(max_d, dd.cells_in(d, tau));
    }
    const double imb = total == 0 ? 1.0
                                  : static_cast<double>(max_d) *
                                        static_cast<double>(dd.ndomains) /
                                        static_cast<double>(total);
    obs::gauge("partition.level_imbalance.l" + std::to_string(tau)).set(imb);
  }
#else
  static_cast<void>(dd);
#endif
}

}  // namespace

graph::Csr build_strategy_graph(const mesh::Mesh& mesh, Strategy strategy) {
  return build_weighted_dual(mesh, strategy);
}

void update_census(const mesh::Mesh& mesh, DomainDecomposition& dd) {
  TAMP_EXPECTS(dd.domain_of_cell.size() ==
                   static_cast<std::size_t>(mesh.num_cells()),
               "decomposition does not match mesh");
  fill_census(mesh, dd);
}

DomainDecomposition decompose(const mesh::Mesh& mesh,
                              const StrategyOptions& opts) {
  TAMP_EXPECTS(opts.ndomains >= 1, "need at least one domain");
  TAMP_TRACE_SCOPE("partition/decompose");
  DomainDecomposition dd;
  if (opts.strategy == Strategy::hybrid) {
    dd = decompose_hybrid(mesh, opts);
  } else {
    dd.ndomains = opts.ndomains;
    if (opts.ndomains == 1) {
      dd.domain_of_cell.assign(static_cast<std::size_t>(mesh.num_cells()), 0);
    } else {
      graph::Csr g = build_weighted_dual(mesh, opts.strategy);
      Options popts = opts.partitioner;
      popts.nparts = opts.ndomains;
      Result r = partition_graph(g, popts);
      dd.domain_of_cell = std::move(r.part);
    }
    fill_census(mesh, dd);
  }
  record_decomposition_metrics(dd);
  return dd;
}

std::vector<part_t> map_domains_to_processes(part_t ndomains,
                                             part_t nprocesses,
                                             DomainMapping mapping) {
  TAMP_EXPECTS(ndomains >= 1 && nprocesses >= 1,
               "domain and process counts must be positive");
  TAMP_EXPECTS(ndomains >= nprocesses,
               "cannot have fewer domains than processes");
  std::vector<part_t> map(static_cast<std::size_t>(ndomains));
  if (mapping == DomainMapping::round_robin) {
    for (part_t d = 0; d < ndomains; ++d)
      map[static_cast<std::size_t>(d)] = d % nprocesses;
  } else {
    // Block mapping distributing remainders evenly: process p receives
    // ceil or floor of ndomains/nprocesses contiguous domains.
    part_t d = 0;
    for (part_t p = 0; p < nprocesses; ++p) {
      const part_t count = (ndomains + nprocesses - 1 - p) / nprocesses;
      for (part_t i = 0; i < count; ++i)
        map[static_cast<std::size_t>(d++)] = p;
    }
  }
  return map;
}

}  // namespace tamp::partition
