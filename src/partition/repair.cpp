#include "partition/repair.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/partition.hpp"

namespace tamp::partition {

namespace {

/// Label the connected fragments of every part. Returns fragment ids per
/// vertex (dense, 0-based) plus, per fragment, its part and size.
struct Fragments {
  std::vector<index_t> id_of_vertex;
  std::vector<part_t> part_of;
  std::vector<index_t> size_of;
  std::vector<index_t> largest_of_part;  ///< fragment id, per part
};

Fragments find_fragments(const graph::Csr& g, const std::vector<part_t>& part,
                         part_t nparts) {
  const index_t n = g.num_vertices();
  Fragments out;
  out.id_of_vertex.assign(static_cast<std::size_t>(n), invalid_index);
  std::vector<index_t> stack;
  for (index_t seed = 0; seed < n; ++seed) {
    if (out.id_of_vertex[static_cast<std::size_t>(seed)] != invalid_index)
      continue;
    const part_t p = part[static_cast<std::size_t>(seed)];
    const auto fid = static_cast<index_t>(out.part_of.size());
    out.part_of.push_back(p);
    out.size_of.push_back(0);
    out.id_of_vertex[static_cast<std::size_t>(seed)] = fid;
    stack.push_back(seed);
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      ++out.size_of[static_cast<std::size_t>(fid)];
      for (const index_t u : g.neighbors(v)) {
        if (out.id_of_vertex[static_cast<std::size_t>(u)] == invalid_index &&
            part[static_cast<std::size_t>(u)] == p) {
          out.id_of_vertex[static_cast<std::size_t>(u)] = fid;
          stack.push_back(u);
        }
      }
    }
  }
  out.largest_of_part.assign(static_cast<std::size_t>(nparts), invalid_index);
  for (index_t f = 0; f < static_cast<index_t>(out.part_of.size()); ++f) {
    index_t& best = out.largest_of_part[static_cast<std::size_t>(
        out.part_of[static_cast<std::size_t>(f)])];
    if (best == invalid_index ||
        out.size_of[static_cast<std::size_t>(f)] >
            out.size_of[static_cast<std::size_t>(best)])
      best = f;
  }
  return out;
}

index_t count_extra_fragments(const Fragments& frags, part_t nparts) {
  std::vector<index_t> per_part(static_cast<std::size_t>(nparts), 0);
  for (const part_t p : frags.part_of) ++per_part[static_cast<std::size_t>(p)];
  index_t extra = 0;
  for (const index_t c : per_part) extra += std::max<index_t>(c - 1, 0);
  return extra;
}

}  // namespace

RepairReport repair_fragments(const graph::Csr& g, std::vector<part_t>& part,
                              part_t nparts, const RepairOptions& opts) {
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(g.num_vertices()),
               "partition vector size mismatch");
  TAMP_EXPECTS(opts.headroom >= 0, "headroom must be non-negative");
  TAMP_TRACE_SCOPE("partition/repair");
  const int nc = g.num_constraints();

  RepairReport report;
  report.cut_before = edge_cut(g, part);
  {
    const Fragments initial = find_fragments(g, part, nparts);
    report.fragments_before = count_extra_fragments(initial, nparts);
  }

  // Allowances: ideal share + headroom + one max vertex weight.
  const auto totals = g.total_weights();
  std::vector<weight_t> max_vwgt(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < nc; ++c)
      max_vwgt[static_cast<std::size_t>(c)] =
          std::max(max_vwgt[static_cast<std::size_t>(c)],
                   w[static_cast<std::size_t>(c)]);
  }
  std::vector<weight_t> allowed(static_cast<std::size_t>(nparts) *
                                static_cast<std::size_t>(nc));
  for (part_t p = 0; p < nparts; ++p) {
    for (int c = 0; c < nc; ++c) {
      const double ideal = static_cast<double>(totals[static_cast<std::size_t>(c)]) /
                           static_cast<double>(nparts);
      allowed[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)] =
          static_cast<weight_t>(std::llround(ideal * (1.0 + opts.headroom))) +
          max_vwgt[static_cast<std::size_t>(c)];
    }
  }

  std::vector<weight_t> loads = part_loads(g, part, nparts);

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    const Fragments frags = find_fragments(g, part, nparts);
    const auto nfrag = static_cast<index_t>(frags.part_of.size());

    // Per-fragment member lists, loads, and processing order (smallest
    // first — satellites resolve before bigger pieces, avoiding churn).
    std::vector<std::vector<index_t>> members(static_cast<std::size_t>(nfrag));
    std::vector<weight_t> frag_loads(
        static_cast<std::size_t>(nfrag) * static_cast<std::size_t>(nc), 0);
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      const index_t f = frags.id_of_vertex[static_cast<std::size_t>(v)];
      members[static_cast<std::size_t>(f)].push_back(v);
      const auto w = g.vertex_weights(v);
      for (int c = 0; c < nc; ++c)
        frag_loads[static_cast<std::size_t>(f) * nc +
                   static_cast<std::size_t>(c)] += w[static_cast<std::size_t>(c)];
    }
    std::vector<index_t> frag_order(static_cast<std::size_t>(nfrag));
    for (index_t f = 0; f < nfrag; ++f)
      frag_order[static_cast<std::size_t>(f)] = f;
    std::sort(frag_order.begin(), frag_order.end(), [&](index_t a, index_t b) {
      return frags.size_of[static_cast<std::size_t>(a)] <
             frags.size_of[static_cast<std::size_t>(b)];
    });

    std::vector<index_t> part_size(static_cast<std::size_t>(nparts), 0);
    for (index_t v = 0; v < g.num_vertices(); ++v)
      ++part_size[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])];

    bool any_move = false;
    for (const index_t f : frag_order) {
      const part_t home = frags.part_of[static_cast<std::size_t>(f)];
      if (frags.largest_of_part[static_cast<std::size_t>(home)] == f)
        continue;  // main body stays
      if (static_cast<double>(frags.size_of[static_cast<std::size_t>(f)]) >
          opts.max_fragment_fraction *
              static_cast<double>(part_size[static_cast<std::size_t>(home)]))
        continue;

      // Contact map over the *current* part state, so earlier moves in
      // this pass are visible. If the fragment now touches its own part
      // (another fragment reattached it), it is no longer an artefact.
      std::unordered_map<part_t, weight_t> contact;
      bool touches_home = false;
      for (const index_t v : members[static_cast<std::size_t>(f)]) {
        const auto nbrs = g.neighbors(v);
        const auto wgts = g.edge_weights(v);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (frags.id_of_vertex[static_cast<std::size_t>(nbrs[i])] == f)
            continue;  // internal edge
          const part_t q = part[static_cast<std::size_t>(nbrs[i])];
          if (q == home) {
            touches_home = true;
            break;
          }
          contact[q] += wgts[i];
        }
        if (touches_home) break;
      }
      if (touches_home) continue;

      std::vector<std::pair<weight_t, part_t>> order;
      order.reserve(contact.size());
      for (const auto& [q, w] : contact) order.emplace_back(w, q);
      std::sort(order.rbegin(), order.rend());
      for (const auto& [w, dest] : order) {
        bool fits = true;
        for (int c = 0; c < nc; ++c) {
          const auto idx = static_cast<std::size_t>(dest) * nc +
                           static_cast<std::size_t>(c);
          if (loads[idx] + frag_loads[static_cast<std::size_t>(f) * nc +
                                      static_cast<std::size_t>(c)] >
              allowed[idx]) {
            fits = false;
            break;
          }
        }
        if (!fits) continue;
        for (const index_t v : members[static_cast<std::size_t>(f)]) {
          part[static_cast<std::size_t>(v)] = dest;
          ++report.vertices_moved;
        }
        for (int c = 0; c < nc; ++c) {
          const weight_t fw = frag_loads[static_cast<std::size_t>(f) * nc +
                                         static_cast<std::size_t>(c)];
          loads[static_cast<std::size_t>(home) * nc +
                static_cast<std::size_t>(c)] -= fw;
          loads[static_cast<std::size_t>(dest) * nc +
                static_cast<std::size_t>(c)] += fw;
        }
        part_size[static_cast<std::size_t>(home)] -=
            frags.size_of[static_cast<std::size_t>(f)];
        part_size[static_cast<std::size_t>(dest)] +=
            frags.size_of[static_cast<std::size_t>(f)];
        any_move = true;
        break;
      }
    }
    if (!any_move) break;
  }

  const Fragments final_frags = find_fragments(g, part, nparts);
  report.fragments_after = count_extra_fragments(final_frags, nparts);
  report.cut_after = edge_cut(g, part);
  TAMP_METRIC_COUNT("partition.repair.vertices_moved", report.vertices_moved);
  TAMP_METRIC_COUNT("partition.repair.fragments_dissolved",
                    report.fragments_before - report.fragments_after);
  return report;
}

}  // namespace tamp::partition
