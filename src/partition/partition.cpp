#include "partition/partition.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/balance.hpp"
#include "partition/bisect.hpp"
#include "partition/refine.hpp"
#include "support/thread_pool.hpp"

namespace tamp::partition {

namespace {

/// Fork a recursive-bisection subtree only when the smaller side has at
/// least this many vertices; below that the task overhead dominates.
constexpr index_t kForkCutoff = 128;

/// Build the subgraph induced by side `s` of a bisection. `n2o` maps the
/// child's vertices to `sub` vertices and `local` maps back (valid only
/// for vertices on side `s`); both come out of the single split pass in
/// rb_recurse. Two sweeps over the side's rows — degree count, then fill
/// after a prefix sum — and each sweep parallelizes over child vertices
/// with disjoint output rows.
graph::Csr build_side_graph(const graph::Csr& sub,
                            const std::vector<part_t>& side, part_t s,
                            const std::vector<index_t>& n2o,
                            const std::vector<index_t>& local,
                            ThreadPool* pool) {
  const auto nv = static_cast<index_t>(n2o.size());
  const int ncon = sub.num_constraints();

  std::vector<eindex_t> xadj(static_cast<std::size_t>(nv) + 1, 0);
  std::vector<weight_t> vwgt(static_cast<std::size_t>(nv) *
                             static_cast<std::size_t>(ncon));
  parallel_for(pool, 0, nv, 4096, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const index_t v = n2o[static_cast<std::size_t>(i)];
      eindex_t deg = 0;
      for (const index_t u : sub.neighbors(v))
        if (side[static_cast<std::size_t>(u)] == s) ++deg;
      xadj[static_cast<std::size_t>(i) + 1] = deg;
      const auto w = sub.vertex_weights(v);
      weight_t* out = vwgt.data() + static_cast<std::size_t>(i) *
                                        static_cast<std::size_t>(ncon);
      for (int c = 0; c < ncon; ++c) out[c] = w[static_cast<std::size_t>(c)];
    }
  });
  for (index_t i = 0; i < nv; ++i)
    xadj[static_cast<std::size_t>(i) + 1] += xadj[static_cast<std::size_t>(i)];

  std::vector<index_t> adjncy(
      static_cast<std::size_t>(xadj[static_cast<std::size_t>(nv)]));
  std::vector<weight_t> adjwgt(adjncy.size());
  parallel_for(pool, 0, nv, 4096, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) {
      const index_t v = n2o[static_cast<std::size_t>(i)];
      auto pos = static_cast<std::size_t>(xadj[static_cast<std::size_t>(i)]);
      const auto nbrs = sub.neighbors(v);
      const auto wgts = sub.edge_weights(v);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        if (side[static_cast<std::size_t>(nbrs[j])] != s) continue;
        adjncy[pos] = local[static_cast<std::size_t>(nbrs[j])];
        adjwgt[pos] = wgts[j];
        ++pos;
      }
    }
  });

  return graph::Csr(nv, ncon, std::move(xadj), std::move(adjncy),
                    std::move(adjwgt), std::move(vwgt));
}

/// Recursive-bisection driver. Assigns parts [part_base, part_base+k) to
/// the vertices of `sub`, writing through `to_global` into `out`.
///
/// Each tree node seeds its own RNG from (opts.seed, part_base, k) — the
/// pair uniquely names the node — so sibling subtrees are independent and
/// can run on different workers while producing the exact bits the serial
/// traversal produces. `out` writes are disjoint across subtrees (each
/// global vertex belongs to exactly one side).
void rb_recurse(const graph::Csr& sub, const std::vector<index_t>& to_global,
                part_t k, part_t part_base, const Options& opts,
                ThreadPool* pool, std::vector<part_t>& out) {
  if (k == 1) {
    for (const index_t gv : to_global)
      out[static_cast<std::size_t>(gv)] = part_base;
    return;
  }
  Rng rng(mix_seed(opts.seed, static_cast<std::uint64_t>(part_base),
                   static_cast<std::uint64_t>(k)));
  const part_t k0 = k / 2;
  const part_t k1 = k - k0;
  const double fraction0 = static_cast<double>(k0) / static_cast<double>(k);

  weight_t cut = 0;
  std::vector<part_t> side =
      multilevel_bisect(sub, fraction0, opts, rng, cut, pool);

  // One pass splits both sides at once: n2o[s] lists side-s vertices in
  // `sub` order and local[v] is v's index within its side.
  std::array<std::vector<index_t>, 2> n2o;
  std::vector<index_t> local(static_cast<std::size_t>(sub.num_vertices()));
  for (index_t v = 0; v < sub.num_vertices(); ++v) {
    auto& list = n2o[static_cast<std::size_t>(side[static_cast<std::size_t>(v)])];
    local[static_cast<std::size_t>(v)] = static_cast<index_t>(list.size());
    list.push_back(v);
  }

  struct Child {
    graph::Csr graph;
    std::vector<index_t> to_global;
    part_t ks;
    part_t base;
  };
  std::array<std::optional<Child>, 2> children;

  for (int s = 0; s < 2; ++s) {
    const part_t ks = s == 0 ? k0 : k1;
    const part_t base = s == 0 ? part_base : part_base + k0;
    const auto& list = n2o[static_cast<std::size_t>(s)];
    if (list.empty()) continue;  // degenerate: that side's parts stay empty
    if (ks == 1) {
      for (const index_t v : list)
        out[static_cast<std::size_t>(
            to_global[static_cast<std::size_t>(v)])] = base;
      continue;
    }
    if (list.size() < 2 * static_cast<std::size_t>(ks)) {
      // Too few vertices to keep splitting sensibly: deal them round-robin.
      for (std::size_t i = 0; i < list.size(); ++i)
        out[static_cast<std::size_t>(
            to_global[static_cast<std::size_t>(list[i])])] =
            base + static_cast<part_t>(i % static_cast<std::size_t>(ks));
      continue;
    }
    std::vector<index_t> child_to_global(list.size());
    for (std::size_t i = 0; i < list.size(); ++i)
      child_to_global[i] = to_global[static_cast<std::size_t>(list[i])];
    children[static_cast<std::size_t>(s)] = Child{
        build_side_graph(sub, side, static_cast<part_t>(s), list, local, pool),
        std::move(child_to_global), ks, base};
  }

  // Fork the two subtrees when both are non-trivial: side 0 goes to the
  // pool, the caller descends into side 1 and then helps until side 0
  // completes. Children outlive the task (we wait before returning), so
  // capturing by reference is safe.
  if (pool != nullptr && children[0] && children[1] &&
      std::min(children[0]->graph.num_vertices(),
               children[1]->graph.num_vertices()) >= kForkCutoff) {
    ThreadPool::TaskHandle handle = pool->submit([&]() {
      TAMP_TRACE_SCOPE("partition/rb_subtree");
      const Child& c = *children[0];
      rb_recurse(c.graph, c.to_global, c.ks, c.base, opts, pool, out);
    });
    {
      const Child& c = *children[1];
      rb_recurse(c.graph, c.to_global, c.ks, c.base, opts, pool, out);
    }
    pool->wait(handle);
    return;
  }
  for (int s = 0; s < 2; ++s) {
    if (!children[static_cast<std::size_t>(s)]) continue;
    const Child& c = *children[static_cast<std::size_t>(s)];
    rb_recurse(c.graph, c.to_global, c.ks, c.base, opts, pool, out);
  }
}

}  // namespace

Result partition_graph(const graph::Csr& g, const Options& opts) {
  TAMP_EXPECTS(opts.nparts >= 1, "nparts must be positive");
  TAMP_EXPECTS(g.num_vertices() >= opts.nparts,
               "more parts requested than vertices");

  const int nthreads = resolve_num_threads(opts.num_threads);
  ThreadPool* pool = ThreadPool::shared(nthreads);

  Result result;
  result.nparts = opts.nparts;
  result.ncon = g.num_constraints();
  result.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);

  if (opts.nparts > 1) {
    std::vector<index_t> identity(static_cast<std::size_t>(g.num_vertices()));
    for (index_t v = 0; v < g.num_vertices(); ++v)
      identity[static_cast<std::size_t>(v)] = v;
    // Per-bisection tolerance is the global budget divided across the
    // recursion depth, so imbalances do not compound to (1+tol)^log2(k).
    Options bisect_opts = opts;
    int depth = 0;
    for (part_t k = 1; k < opts.nparts; k *= 2) ++depth;
    bisect_opts.tolerance =
        std::max(opts.tolerance / std::max(depth, 1), 0.005);
    {
      TAMP_TRACE_SCOPE("partition/rb");
      rb_recurse(g, identity, opts.nparts, 0, bisect_opts, pool, result.part);
    }

    if (opts.method == Method::kway_direct) {
      TAMP_TRACE_SCOPE("partition/kway");
      // RB seeds a direct k-way refinement over the whole graph. The k-way
      // RNG is derived from the seed, not shared with the RB tree, so its
      // stream does not depend on traversal order.
      Rng kway_rng(mix_seed(opts.seed, 0x6b776179ULL /* "kway" */,
                            static_cast<std::uint64_t>(opts.nparts)));
      const int nc = g.num_constraints();
      const auto totals = g.total_weights();
      std::vector<weight_t> max_vwgt(static_cast<std::size_t>(nc), 0);
      for (index_t v = 0; v < g.num_vertices(); ++v) {
        const auto w = g.vertex_weights(v);
        for (int c = 0; c < nc; ++c)
          max_vwgt[static_cast<std::size_t>(c)] = std::max(
              max_vwgt[static_cast<std::size_t>(c)], w[static_cast<std::size_t>(c)]);
      }
      std::vector<weight_t> allowed(
          static_cast<std::size_t>(opts.nparts) * static_cast<std::size_t>(nc));
      for (part_t p = 0; p < opts.nparts; ++p) {
        for (int c = 0; c < nc; ++c) {
          const double target = static_cast<double>(totals[static_cast<std::size_t>(c)]) /
                                static_cast<double>(opts.nparts);
          allowed[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)] =
              static_cast<weight_t>(std::llround(target * (1.0 + opts.tolerance))) +
              max_vwgt[static_cast<std::size_t>(c)];
        }
      }
      kway_refine(g, result.part, opts.nparts, allowed, kway_rng,
                  opts.refine_passes);
    }
  }

  result.edge_cut = edge_cut(g, result.part);
  result.loads = part_loads(g, result.part, opts.nparts);
#if defined(TAMP_TRACING_ENABLED)
  obs::gauge("partition.threads").set(static_cast<double>(nthreads));
  for (int c = 0; c < result.ncon; ++c)
    obs::gauge("partition.imbalance.c" + std::to_string(c))
        .set(result.imbalance(c));
#endif
  return result;
}

}  // namespace tamp::partition
