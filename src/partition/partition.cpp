#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/balance.hpp"
#include "partition/bisect.hpp"
#include "partition/refine.hpp"

namespace tamp::partition {

namespace {

/// Recursive-bisection driver. Assigns parts [part_base, part_base+k) to
/// the vertices of `sub`, writing through `to_global` into `out`.
void rb_recurse(const graph::Csr& sub, const std::vector<index_t>& to_global,
                part_t k, part_t part_base, const Options& opts, Rng& rng,
                std::vector<part_t>& out) {
  if (k == 1) {
    for (const index_t gv : to_global)
      out[static_cast<std::size_t>(gv)] = part_base;
    return;
  }
  const part_t k0 = k / 2;
  const part_t k1 = k - k0;
  const double fraction0 = static_cast<double>(k0) / static_cast<double>(k);

  weight_t cut = 0;
  std::vector<part_t> side = multilevel_bisect(sub, fraction0, opts, rng, cut);

  for (int s = 0; s < 2; ++s) {
    const part_t ks = s == 0 ? k0 : k1;
    std::vector<char> mask(static_cast<std::size_t>(sub.num_vertices()), 0);
    index_t count = 0;
    for (index_t v = 0; v < sub.num_vertices(); ++v) {
      if (side[static_cast<std::size_t>(v)] == s) {
        mask[static_cast<std::size_t>(v)] = 1;
        ++count;
      }
    }
    const part_t base = s == 0 ? part_base : part_base + k0;
    if (count == 0) continue;  // degenerate: that side's parts stay empty
    if (ks == 1) {
      for (index_t v = 0; v < sub.num_vertices(); ++v)
        if (mask[static_cast<std::size_t>(v)])
          out[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
              base;
      continue;
    }
    std::vector<index_t> old_to_new, new_to_old;
    graph::Csr child = graph::induced_subgraph(sub, mask, old_to_new, new_to_old);
    std::vector<index_t> child_to_global(new_to_old.size());
    for (std::size_t i = 0; i < new_to_old.size(); ++i)
      child_to_global[i] =
          to_global[static_cast<std::size_t>(new_to_old[i])];
    if (child.num_vertices() < 2 * ks) {
      // Too few vertices to keep splitting sensibly: deal them round-robin.
      for (std::size_t i = 0; i < child_to_global.size(); ++i)
        out[static_cast<std::size_t>(child_to_global[i])] =
            base + static_cast<part_t>(i % static_cast<std::size_t>(ks));
      continue;
    }
    rb_recurse(child, child_to_global, ks, base, opts, rng, out);
  }
}

}  // namespace

Result partition_graph(const graph::Csr& g, const Options& opts) {
  TAMP_EXPECTS(opts.nparts >= 1, "nparts must be positive");
  TAMP_EXPECTS(g.num_vertices() >= opts.nparts,
               "more parts requested than vertices");

  Result result;
  result.nparts = opts.nparts;
  result.ncon = g.num_constraints();
  result.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);

  if (opts.nparts > 1) {
    Rng rng(opts.seed);
    std::vector<index_t> identity(static_cast<std::size_t>(g.num_vertices()));
    for (index_t v = 0; v < g.num_vertices(); ++v)
      identity[static_cast<std::size_t>(v)] = v;
    // Per-bisection tolerance is the global budget divided across the
    // recursion depth, so imbalances do not compound to (1+tol)^log2(k).
    Options bisect_opts = opts;
    int depth = 0;
    for (part_t k = 1; k < opts.nparts; k *= 2) ++depth;
    bisect_opts.tolerance =
        std::max(opts.tolerance / std::max(depth, 1), 0.005);
    {
      TAMP_TRACE_SCOPE("partition/rb");
      rb_recurse(g, identity, opts.nparts, 0, bisect_opts, rng, result.part);
    }

    if (opts.method == Method::kway_direct) {
      TAMP_TRACE_SCOPE("partition/kway");
      // RB seeds a direct k-way refinement over the whole graph.
      const int nc = g.num_constraints();
      const auto totals = g.total_weights();
      std::vector<weight_t> max_vwgt(static_cast<std::size_t>(nc), 0);
      for (index_t v = 0; v < g.num_vertices(); ++v) {
        const auto w = g.vertex_weights(v);
        for (int c = 0; c < nc; ++c)
          max_vwgt[static_cast<std::size_t>(c)] = std::max(
              max_vwgt[static_cast<std::size_t>(c)], w[static_cast<std::size_t>(c)]);
      }
      std::vector<weight_t> allowed(
          static_cast<std::size_t>(opts.nparts) * static_cast<std::size_t>(nc));
      for (part_t p = 0; p < opts.nparts; ++p) {
        for (int c = 0; c < nc; ++c) {
          const double target = static_cast<double>(totals[static_cast<std::size_t>(c)]) /
                                static_cast<double>(opts.nparts);
          allowed[static_cast<std::size_t>(p) * nc + static_cast<std::size_t>(c)] =
              static_cast<weight_t>(std::llround(target * (1.0 + opts.tolerance))) +
              max_vwgt[static_cast<std::size_t>(c)];
        }
      }
      kway_refine(g, result.part, opts.nparts, allowed, rng,
                  opts.refine_passes);
    }
  }

  result.edge_cut = edge_cut(g, result.part);
  result.loads = part_loads(g, result.part, opts.nparts);
#if defined(TAMP_TRACING_ENABLED)
  for (int c = 0; c < result.ncon; ++c)
    obs::gauge("partition.imbalance.c" + std::to_string(c))
        .set(result.imbalance(c));
#endif
  return result;
}

}  // namespace tamp::partition
