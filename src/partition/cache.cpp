#include "partition/cache.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"

namespace tamp::partition {

std::uint64_t mesh_content_hash(const mesh::Mesh& mesh) {
  TAMP_TRACE_SCOPE("partition/cache/mesh_hash");
  Fnv1a h;
  h.add(mesh.num_cells()).add(mesh.num_faces()).add(mesh.num_interior_faces());
  // Topology: the face→cell incidence determines the dual graph and the
  // boundary set (side 1 == invalid_index marks boundary faces).
  for (index_t f = 0; f < mesh.num_faces(); ++f)
    h.add(mesh.face_cell(f, 0)).add(mesh.face_cell(f, 1));
  // Temporal state: the weights/constraints of every strategy.
  h.add_vector(mesh.cell_levels());
  // Geometry: the locality permutation orders cells along a
  // space-filling curve over the centroids.
  for (index_t c = 0; c < mesh.num_cells(); ++c) {
    const auto p = mesh.cell_centroid(c);
    h.add(p.x).add(p.y).add(p.z);
  }
  return h.value();
}

std::uint64_t CacheKey::hash() const {
  return Fnv1a{}
      .add(mesh_hash)
      .add(strategy)
      .add(ndomains)
      .add(nprocesses)
      .add(tolerance)
      .add(seed)
      .add(threads)
      .value();
}

CacheKey make_cache_key(const mesh::Mesh& mesh, const StrategyOptions& opts) {
  CacheKey key;
  key.mesh_hash = mesh_content_hash(mesh);
  key.strategy = opts.strategy;
  key.ndomains = opts.ndomains;
  key.nprocesses = opts.nprocesses;
  key.tolerance = opts.partitioner.tolerance;
  key.seed = opts.partitioner.seed;
  key.threads = resolve_num_threads(opts.partitioner.num_threads);
  return key;
}

std::size_t CachedDecomposition::estimate_bytes() const {
  auto vec = [](const auto& v) { return v.size() * sizeof(v[0]); };
  return sizeof(CachedDecomposition) + vec(decomposition.domain_of_cell) +
         vec(decomposition.cells_by_level) + vec(permutation.cell_old_to_new) +
         vec(permutation.cell_new_to_old) + vec(permutation.face_old_to_new) +
         vec(permutation.face_new_to_old);
}

DecompositionCache::DecompositionCache() : DecompositionCache(Options{}) {}

DecompositionCache::DecompositionCache(Options opts) : opts_(opts) {
  TAMP_EXPECTS(opts_.max_entries >= 1, "cache needs room for one entry");
  TAMP_EXPECTS(opts_.admit_max_fraction > 0.0 &&
                   opts_.admit_max_fraction <= 1.0,
               "admission fraction must be in (0, 1]");
}

void DecompositionCache::touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

DecompositionCache::Value DecompositionCache::find(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch(it->second);
  return it->second->value;
}

void DecompositionCache::evict_locked() {
  while (!lru_.empty() && (stats_.bytes > opts_.max_bytes ||
                           lru_.size() > opts_.max_entries)) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.value->bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void DecompositionCache::insert_locked(const CacheKey& key,
                                       const Value& value) {
  if (index_.find(key) != index_.end()) return;  // lost a race; keep first
  if (value->bytes >
      static_cast<std::size_t>(opts_.admit_max_fraction *
                               static_cast<double>(opts_.max_bytes))) {
    ++stats_.rejected;
    return;
  }
  lru_.push_front(Entry{key, value});
  index_.emplace(key, lru_.begin());
  stats_.bytes += value->bytes;
  evict_locked();
}

DecompositionCache::Value DecompositionCache::get_or_compute(
    const CacheKey& key, const std::function<CachedDecomposition()>& compute) {
  std::shared_ptr<Inflight> flight;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      touch(it->second);
      return it->second->value;
    }
    const auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Another caller is computing this key: join its flight.
      ++stats_.inflight_joins;
      const std::shared_ptr<Inflight> other = in->second;
      cv_.wait(lock, [&] { return other->done; });
      if (other->error) std::rethrow_exception(other->error);
      return other->value;
    }
    ++stats_.misses;
    flight = std::make_shared<Inflight>();
    inflight_.emplace(key, flight);
  }

  // Compute outside the lock; misses on different keys run concurrently.
  Value value;
  std::exception_ptr error;
  try {
    auto computed = std::make_shared<CachedDecomposition>(compute());
    computed->bytes = computed->estimate_bytes();
    value = std::move(computed);
  } catch (...) {
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    flight->done = true;
    flight->value = value;
    flight->error = error;
    inflight_.erase(key);
    if (value != nullptr) insert_locked(key, value);
  }
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  return value;
}

void DecompositionCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
}

DecompositionCache::Stats DecompositionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  return s;
}

void DecompositionCache::publish_metrics(const std::string& prefix) const {
  const Stats s = stats();
  obs::gauge(prefix + ".hits").set(static_cast<double>(s.hits));
  obs::gauge(prefix + ".misses").set(static_cast<double>(s.misses));
  obs::gauge(prefix + ".evictions").set(static_cast<double>(s.evictions));
  obs::gauge(prefix + ".rejected").set(static_cast<double>(s.rejected));
  obs::gauge(prefix + ".inflight_joins")
      .set(static_cast<double>(s.inflight_joins));
  obs::gauge(prefix + ".entries").set(static_cast<double>(s.entries));
  obs::gauge(prefix + ".bytes").set(static_cast<double>(s.bytes));
  obs::gauge(prefix + ".hit_rate").set(s.served_rate());
}

DecompositionCache::Value decompose_cached(const mesh::Mesh& mesh,
                                           const StrategyOptions& opts,
                                           DecompositionCache* cache,
                                           bool with_permutation) {
  auto compute = [&] {
    TAMP_TRACE_SCOPE("partition/cache/compute");
    CachedDecomposition out;
    out.decomposition = decompose(mesh, opts);
    if (with_permutation) {
      out.permutation = build_locality_permutation(
          mesh, out.decomposition.domain_of_cell, opts.ndomains);
      out.with_permutation = true;
    }
    return out;
  };
  if (cache == nullptr) {
    auto value = std::make_shared<CachedDecomposition>(compute());
    value->bytes = value->estimate_bytes();
    return value;
  }
  const CacheKey key = make_cache_key(mesh, opts);
  auto value = cache->get_or_compute(key, compute);
  // A permutation-less hit cannot serve a permutation request; compute
  // the richer entry and let it replace the old one in LRU order.
  if (with_permutation && !value->with_permutation) {
    auto upgraded = std::make_shared<CachedDecomposition>(*value);
    upgraded->permutation = build_locality_permutation(
        mesh, upgraded->decomposition.domain_of_cell, opts.ndomains);
    upgraded->with_permutation = true;
    upgraded->bytes = upgraded->estimate_bytes();
    return upgraded;
  }
  return value;
}

}  // namespace tamp::partition
