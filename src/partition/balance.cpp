#include "partition/balance.hpp"

#include <algorithm>
#include <cmath>

namespace tamp::partition {

BalanceSpec::BalanceSpec(const graph::Csr& g, double fraction0,
                         double tolerance, ThreadPool* pool) {
  TAMP_EXPECTS(fraction0 > 0.0 && fraction0 < 1.0,
               "side-0 fraction must be in (0,1)");
  TAMP_EXPECTS(tolerance >= 0.0, "tolerance must be non-negative");
  const index_t n = g.num_vertices();
  const int nc = g.num_constraints();

  // One pass computes per-constraint totals plus one max vertex weight of
  // absolute slack. Chunk partials are integers combined in chunk order,
  // so the parallel result is bit-identical to the serial scan.
  constexpr std::int64_t kGrain = 16384;
  const std::int64_t nchunks =
      n > 0 ? (static_cast<std::int64_t>(n) + kGrain - 1) / kGrain : 0;
  std::vector<weight_t> partial_total(
      static_cast<std::size_t>(nchunks) * static_cast<std::size_t>(nc), 0);
  std::vector<weight_t> partial_slack(
      static_cast<std::size_t>(nchunks) * static_cast<std::size_t>(nc), 0);
  parallel_for(pool, 0, n, kGrain, [&](std::int64_t b, std::int64_t e) {
    const auto chunk = static_cast<std::size_t>(b / kGrain);
    weight_t* tot = partial_total.data() + chunk * static_cast<std::size_t>(nc);
    weight_t* slk = partial_slack.data() + chunk * static_cast<std::size_t>(nc);
    for (std::int64_t v = b; v < e; ++v) {
      const auto w = g.vertex_weights(static_cast<index_t>(v));
      for (int c = 0; c < nc; ++c) {
        tot[c] += w[static_cast<std::size_t>(c)];
        slk[c] = std::max(slk[c], w[static_cast<std::size_t>(c)]);
      }
    }
  });
  total_.assign(static_cast<std::size_t>(nc), 0);
  std::vector<weight_t> slack(static_cast<std::size_t>(nc), 0);
  for (std::int64_t chunk = 0; chunk < nchunks; ++chunk) {
    for (int c = 0; c < nc; ++c) {
      const auto idx = static_cast<std::size_t>(chunk) *
                           static_cast<std::size_t>(nc) +
                       static_cast<std::size_t>(c);
      total_[static_cast<std::size_t>(c)] += partial_total[idx];
      slack[static_cast<std::size_t>(c)] =
          std::max(slack[static_cast<std::size_t>(c)], partial_slack[idx]);
    }
  }

  target0_.resize(static_cast<std::size_t>(nc));
  allowed_.resize(2 * static_cast<std::size_t>(nc));
  for (int c = 0; c < nc; ++c) {
    const auto sc = static_cast<std::size_t>(c);
    target0_[sc] = static_cast<weight_t>(
        std::llround(static_cast<double>(total_[sc]) * fraction0));
    const weight_t target1 = total_[sc] - target0_[sc];
    allowed_[sc] = static_cast<weight_t>(std::llround(
                       static_cast<double>(target0_[sc]) * (1.0 + tolerance))) +
                   slack[sc];
    allowed_[static_cast<std::size_t>(nc) + sc] =
        static_cast<weight_t>(std::llround(static_cast<double>(target1) *
                                           (1.0 + tolerance))) +
        slack[sc];
  }
}

bool BalanceSpec::feasible(const std::vector<weight_t>& loads0) const {
  for (int c = 0; c < ncon(); ++c) {
    const auto sc = static_cast<std::size_t>(c);
    if (loads0[sc] > allowed(0, c)) return false;
    if (total_[sc] - loads0[sc] > allowed(1, c)) return false;
  }
  return true;
}

bool BalanceSpec::move_keeps_feasible(const std::vector<weight_t>& loads0,
                                      std::span<const weight_t> w,
                                      int to_side) const {
  for (int c = 0; c < ncon(); ++c) {
    const auto sc = static_cast<std::size_t>(c);
    const weight_t new_load = to_side == 0
                                  ? loads0[sc] + w[sc]
                                  : total_[sc] - loads0[sc] + w[sc];
    if (new_load > allowed(to_side, c)) return false;
  }
  return true;
}

double BalanceSpec::violation(const std::vector<weight_t>& loads0) const {
  double v = 0.0;
  for (int c = 0; c < ncon(); ++c) {
    const auto sc = static_cast<std::size_t>(c);
    const double denom = std::max<double>(1.0, static_cast<double>(total_[sc]));
    const weight_t over0 = loads0[sc] - allowed(0, c);
    const weight_t over1 = (total_[sc] - loads0[sc]) - allowed(1, c);
    if (over0 > 0) v += static_cast<double>(over0) / denom;
    if (over1 > 0) v += static_cast<double>(over1) / denom;
  }
  return v;
}

}  // namespace tamp::partition
