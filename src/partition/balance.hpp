// Multi-constraint balance bookkeeping shared by the initial-partitioning
// and refinement stages.
//
// A bisection splits a graph into side 0 (which must receive `fraction0`
// of every constraint's total weight) and side 1. A side is *feasible*
// when, for every constraint c,
//
//   load_side[c] ≤ target_side[c] · (1 + tolerance) + slack[c]
//
// where slack[c] is one maximum vertex weight — without it, constraints
// whose total weight is a handful of units (e.g. the paper's CUBE mesh,
// where τ=2 holds 0.3 % of cells) would make every bisection infeasible.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/thread_pool.hpp"
#include "support/types.hpp"

namespace tamp::partition {

/// Balance targets for one 2-way split.
class BalanceSpec {
public:
  /// Derive targets from a graph's totals and the side-0 fraction. The
  /// O(n·ncon) total/slack accounting runs on `pool` when one is given
  /// (per-chunk integer partials — bit-identical to the serial scan).
  BalanceSpec(const graph::Csr& g, double fraction0, double tolerance,
              ThreadPool* pool = nullptr);

  [[nodiscard]] int ncon() const { return static_cast<int>(total_.size()); }
  [[nodiscard]] weight_t total(int c) const {
    return total_[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] weight_t target(int side, int c) const {
    return side == 0 ? target0_[static_cast<std::size_t>(c)]
                     : total_[static_cast<std::size_t>(c)] -
                           target0_[static_cast<std::size_t>(c)];
  }
  /// Maximum admissible load of `side` for constraint c.
  [[nodiscard]] weight_t allowed(int side, int c) const {
    return allowed_[static_cast<std::size_t>(side) *
                        static_cast<std::size_t>(ncon()) +
                    static_cast<std::size_t>(c)];
  }

  /// True when both sides are within their allowances.
  /// loads0 holds side-0 loads; side 1 is total − side 0.
  [[nodiscard]] bool feasible(const std::vector<weight_t>& loads0) const;

  /// True if moving a vertex with weights `w` into `to_side` keeps that
  /// side within its allowance on every constraint.
  [[nodiscard]] bool move_keeps_feasible(const std::vector<weight_t>& loads0,
                                         std::span<const weight_t> w,
                                         int to_side) const;

  /// Scalar measure of how far the split is from feasible (0 = feasible);
  /// the sum over sides and constraints of the relative overshoot.
  [[nodiscard]] double violation(const std::vector<weight_t>& loads0) const;

private:
  std::vector<weight_t> total_;
  std::vector<weight_t> target0_;
  std::vector<weight_t> allowed_;  // [side][c]
};

}  // namespace tamp::partition
