#include "partition/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "support/check.hpp"

namespace tamp::partition {

void write_partition(const std::vector<part_t>& domain_of_cell,
                     part_t ndomains, std::ostream& os) {
  TAMP_EXPECTS(ndomains >= 1, "need at least one domain");
  os << "tamp-partition " << domain_of_cell.size() << ' ' << ndomains << '\n';
  for (const part_t d : domain_of_cell) {
    TAMP_EXPECTS(d >= 0 && d < ndomains, "domain id out of declared range");
    os << d << '\n';
  }
}

void save_partition(const std::vector<part_t>& domain_of_cell,
                    part_t ndomains, const std::string& path) {
  std::ofstream out(path);
  if (!out.good())
    throw runtime_failure("cannot open partition output: " + path);
  write_partition(domain_of_cell, ndomains, out);
  if (!out.good()) throw runtime_failure("error writing partition: " + path);
}

std::vector<part_t> read_partition(std::istream& is, part_t& ndomains_out) {
  std::string magic;
  long long ncells = 0;
  long long ndomains = 0;
  if (!(is >> magic >> ncells >> ndomains) || magic != "tamp-partition" ||
      ncells < 0 || ndomains < 1)
    throw runtime_failure("malformed tamp-partition header");
  std::vector<part_t> part(static_cast<std::size_t>(ncells));
  for (long long c = 0; c < ncells; ++c) {
    long long d = -1;
    if (!(is >> d) || d < 0 || d >= ndomains)
      throw runtime_failure("malformed tamp-partition record at cell " +
                            std::to_string(c));
    part[static_cast<std::size_t>(c)] = static_cast<part_t>(d);
  }
  ndomains_out = static_cast<part_t>(ndomains);
  return part;
}

std::vector<part_t> load_partition(const std::string& path,
                                   part_t& ndomains_out) {
  std::ifstream in(path);
  if (!in.good()) throw runtime_failure("cannot open partition input: " + path);
  return read_partition(in, ndomains_out);
}

}  // namespace tamp::partition
