// Locality renumbering policy: order cells and faces so every
// (domain, temporal level, locality) object class of the task generator
// becomes one contiguous id range.
//
// The task graph's unit of work is the (domain × class) object list
// (taskgraph/generate.hpp). On a mesh in generator order those lists are
// scattered index vectors and the solver kernels execute them as an
// indirect gather/scatter — the classic locality bottleneck of
// unstructured FV codes. This module exports a MeshPermutation that
// sorts cells domain-major, class-minor, space-filling-curve-ordered
// within each class, and sorts faces by their task class with boundary
// faces collected in a tail sub-range, so that:
//
//   * each class's objects are a [begin, end) range (taskgraph detects
//     this and the solvers switch to streaming range kernels);
//   * inside a range, SFC order keeps adjacent objects geometrically
//     adjacent (cells a face touches are close to the face's position in
//     its own range);
//   * the branchy boundary-vs-interior test hoists out of the flux loop,
//     because boundary faces occupy their own sub-range.
//
// The class key formula matches taskgraph::generate_task_graph exactly —
// this is asserted by the property tests, which require every class list
// on a renumbered mesh to be contiguous.
#pragma once

#include <string>
#include <vector>

#include "mesh/mesh.hpp"
#include "mesh/reorder.hpp"
#include "support/types.hpp"

namespace tamp::partition {

/// User-facing layout knob (flusim --reorder).
enum class Reorder { none, locality };

[[nodiscard]] const char* to_string(Reorder r);
/// Parse "none" | "locality" (throws precondition_error).
Reorder parse_reorder(const std::string& name);

/// Build the locality permutation for `mesh` decomposed by
/// `domain_of_cell`. Deterministic: ties in the space-filling-curve
/// order break by original id.
[[nodiscard]] mesh::MeshPermutation build_locality_permutation(
    const mesh::Mesh& mesh, const std::vector<part_t>& domain_of_cell,
    part_t ndomains);

/// A renumbered decomposition bundle: the permuted mesh, the permutation
/// that produced it, and the domain vector relabelled to match.
struct ReorderedDecomposition {
  mesh::Mesh mesh;
  mesh::MeshPermutation permutation;
  std::vector<part_t> domain_of_cell;
};

/// Convenience: permute `mesh` + `domain_of_cell` with the locality
/// layout in one step.
[[nodiscard]] ReorderedDecomposition reorder_for_locality(
    const mesh::Mesh& mesh, const std::vector<part_t>& domain_of_cell,
    part_t ndomains);

}  // namespace tamp::partition
