#include "partition/initial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "partition/partition.hpp"

namespace tamp::partition {

namespace {

/// One growing trial. Returns the bisection and its cut; `feasible_out`
/// reports whether the final split satisfied the spec.
std::vector<part_t> grow_once(const graph::Csr& g, const BalanceSpec& spec,
                              Rng& rng, weight_t& cut_out, bool& feasible_out) {
  const index_t n = g.num_vertices();
  const int nc = spec.ncon();
  std::vector<part_t> part(static_cast<std::size_t>(n), 1);
  std::vector<weight_t> loads0(static_cast<std::size_t>(nc), 0);

  // gain[v]: cut delta of moving v into side 0 (positive = cut shrinks),
  // valid only while v is in side 1 and in the frontier.
  std::vector<weight_t> gain(static_cast<std::size_t>(n), 0);
  std::vector<char> in_frontier(static_cast<std::size_t>(n), 0);
  std::vector<index_t> frontier;

  auto all_targets_met = [&] {
    for (int c = 0; c < nc; ++c)
      if (loads0[static_cast<std::size_t>(c)] < spec.target(0, c)) return false;
    return true;
  };

  auto admit = [&](index_t v) {
    part[static_cast<std::size_t>(v)] = 0;
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < nc; ++c)
      loads0[static_cast<std::size_t>(c)] += w[static_cast<std::size_t>(c)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const index_t u = nbrs[i];
      if (part[static_cast<std::size_t>(u)] != 1) continue;
      // Edge u–v flips from "would be cut" to "internal" for u.
      gain[static_cast<std::size_t>(u)] += 2 * wgts[i];
      if (!in_frontier[static_cast<std::size_t>(u)]) {
        in_frontier[static_cast<std::size_t>(u)] = 1;
        frontier.push_back(u);
      }
    }
  };

  auto seed_gain = [&](index_t v) {
    // Baseline gain of a fresh frontier vertex: −(weight of edges to side
    // 1) + (weight of edges to side 0); computed incrementally by admit(),
    // so initialise with −total degree weight when first seen.
    weight_t w = 0;
    const auto wgts = g.edge_weights(v);
    for (const weight_t ew : wgts) w += ew;
    return -w;
  };
  for (index_t v = 0; v < n; ++v) gain[static_cast<std::size_t>(v)] = seed_gain(v);

  std::vector<index_t> perm = random_permutation(n, rng);
  std::size_t next_seed = 0;

  while (!all_targets_met()) {
    // Re-seed if the frontier dried up (disconnected graphs).
    if (frontier.empty()) {
      while (next_seed < perm.size() &&
             part[static_cast<std::size_t>(perm[next_seed])] == 0)
        ++next_seed;
      if (next_seed >= perm.size()) break;
      const index_t s = perm[next_seed++];
      if (!spec.move_keeps_feasible(loads0, g.vertex_weights(s), 0)) continue;
      admit(s);
      continue;
    }
    // Pick the best admissible frontier vertex: highest
    // gain + deficit-contribution score.
    double best_score = -std::numeric_limits<double>::max();
    std::size_t best_slot = frontier.size();
    for (std::size_t slot = 0; slot < frontier.size(); ++slot) {
      const index_t v = frontier[slot];
      if (part[static_cast<std::size_t>(v)] == 0) continue;  // stale
      if (!spec.move_keeps_feasible(loads0, g.vertex_weights(v), 0)) continue;
      const auto w = g.vertex_weights(v);
      double help = 0.0;
      for (int c = 0; c < nc; ++c) {
        const auto sc = static_cast<std::size_t>(c);
        const weight_t deficit = spec.target(0, c) - loads0[sc];
        if (deficit > 0 && w[sc] > 0) {
          help += static_cast<double>(std::min<weight_t>(w[sc], deficit)) /
                  std::max<double>(1.0, static_cast<double>(spec.target(0, c)));
        }
      }
      // Cut gain is primary; the deficit term breaks ties towards
      // vertices the lagging constraints still need.
      const double score =
          static_cast<double>(gain[static_cast<std::size_t>(v)]) +
          1000.0 * help;
      if (score > best_score) {
        best_score = score;
        best_slot = slot;
      }
    }
    if (best_slot == frontier.size()) {
      // Nothing admissible in the frontier; force a reseed.
      std::vector<index_t>().swap(frontier);
      std::fill(in_frontier.begin(), in_frontier.end(), 0);
      bool reseeded = false;
      while (next_seed < perm.size()) {
        const index_t s = perm[next_seed++];
        if (part[static_cast<std::size_t>(s)] == 1 &&
            spec.move_keeps_feasible(loads0, g.vertex_weights(s), 0)) {
          admit(s);
          reseeded = true;
          break;
        }
      }
      if (!reseeded) break;
      continue;
    }
    const index_t v = frontier[best_slot];
    frontier[best_slot] = frontier.back();
    frontier.pop_back();
    in_frontier[static_cast<std::size_t>(v)] = 0;
    admit(v);
    // Compact stale entries occasionally to keep the scan cheap.
    if (frontier.size() > 64 && frontier.size() > 4 * static_cast<std::size_t>(n) / 8) {
      std::erase_if(frontier, [&](index_t u) {
        const bool stale = part[static_cast<std::size_t>(u)] == 0;
        if (stale) in_frontier[static_cast<std::size_t>(u)] = 0;
        return stale;
      });
    }
  }

  cut_out = edge_cut(g, part);
  feasible_out = spec.feasible(loads0);
  return part;
}

}  // namespace

std::vector<part_t> greedy_growing_bisection(const graph::Csr& g,
                                             const BalanceSpec& spec, Rng& rng,
                                             int trials) {
  TAMP_EXPECTS(trials >= 1, "need at least one trial");
  TAMP_EXPECTS(g.num_vertices() >= 2, "cannot bisect fewer than 2 vertices");

  std::vector<part_t> best;
  weight_t best_cut = 0;
  bool best_feasible = false;
  double best_violation = std::numeric_limits<double>::max();

  for (int t = 0; t < trials; ++t) {
    weight_t cut = 0;
    bool feasible = false;
    std::vector<part_t> candidate = grow_once(g, spec, rng, cut, feasible);
    double viol = 0.0;
    if (!feasible) {
      std::vector<weight_t> loads0(static_cast<std::size_t>(spec.ncon()), 0);
      for (index_t v = 0; v < g.num_vertices(); ++v) {
        if (candidate[static_cast<std::size_t>(v)] == 0) {
          const auto w = g.vertex_weights(v);
          for (int c = 0; c < spec.ncon(); ++c)
            loads0[static_cast<std::size_t>(c)] += w[static_cast<std::size_t>(c)];
        }
      }
      viol = spec.violation(loads0);
    }
    const bool better = best.empty() ||
                        (feasible && !best_feasible) ||
                        (feasible == best_feasible &&
                         (feasible ? cut < best_cut
                                   : viol < best_violation ||
                                         (viol == best_violation &&
                                          cut < best_cut)));
    if (better) {
      best = std::move(candidate);
      best_cut = cut;
      best_feasible = feasible;
      best_violation = viol;
    }
  }
  return best;
}

}  // namespace tamp::partition
