// The paper's mesh-partitioning strategies, expressed on top of the
// multilevel partitioner.
//
//   SC_CELLS — single constraint, unit weights (plain cell balance);
//              included as a naive baseline.
//   SC_OC    — Single-Constraint Operating Cost (paper's default):
//              weight(cell) = 2^(τmax − τ), balancing the *iteration*.
//   MC_TL    — Multi-Constraint Temporal-Level (paper's contribution,
//              §IV/§V): one binary constraint per temporal level,
//              balancing every *subiteration* at once.
//   HYBRID   — the paper's §VII perspective: MC_TL across processes
//              first, then SC_OC inside each process domain, trading a
//              little balance for less inter-process communication.
#pragma once

#include <string>
#include <vector>

#include "mesh/levels.hpp"
#include "mesh/mesh.hpp"
#include "partition/partition.hpp"

namespace tamp::partition {

enum class Strategy { sc_cells, sc_oc, mc_tl, hybrid };

[[nodiscard]] const char* to_string(Strategy s);
/// Parse "sc_cells" | "sc_oc" | "mc_tl" | "hybrid".
Strategy parse_strategy(const std::string& name);

/// How domains map onto MPI processes.
enum class DomainMapping {
  block,        ///< contiguous runs of domain ids per process (default; RB
                ///< numbering keeps them spatially close)
  round_robin,  ///< domain d → process d mod nprocesses
};

/// Parameters of a domain decomposition.
struct StrategyOptions {
  Strategy strategy = Strategy::sc_oc;
  part_t ndomains = 16;
  /// Number of MPI processes the domains will be mapped to. Only used to
  /// size HYBRID's first phase; defaults to ndomains when 0.
  part_t nprocesses = 0;
  Options partitioner;  ///< tolerance / seed / method knobs
};

/// A domain decomposition of a mesh plus derived statistics.
struct DomainDecomposition {
  std::vector<part_t> domain_of_cell;
  part_t ndomains = 0;
  weight_t edge_cut = 0;  ///< interior faces crossing domains

  /// cells[d * num_levels + τ] = number of level-τ cells in domain d —
  /// the paper's Fig 7a / 10a census.
  std::vector<index_t> cells_by_level;
  level_t num_levels = 0;

  [[nodiscard]] index_t cells_in(part_t d, level_t tau) const {
    return cells_by_level[static_cast<std::size_t>(d) * num_levels +
                          static_cast<std::size_t>(tau)];
  }
  /// Operating cost held by domain d for level τ (Fig 7a bars).
  [[nodiscard]] weight_t cost_in(part_t d, level_t tau) const {
    return static_cast<weight_t>(cells_in(d, tau)) *
           mesh::operating_cost(tau, static_cast<level_t>(num_levels - 1));
  }
  /// Total operating cost of domain d.
  [[nodiscard]] weight_t total_cost(part_t d) const;

  /// Worst per-level cell-count imbalance across domains (MC_TL's target
  /// metric): max_τ max_d cells_in(d,τ)·ndomains / total(τ).
  [[nodiscard]] double level_imbalance() const;
  /// Operating-cost imbalance across domains (SC_OC's target metric).
  [[nodiscard]] double cost_imbalance() const;
};

/// Build the weighted dual graph a strategy feeds to the partitioner.
/// (HYBRID builds per-phase graphs internally; asking for it here throws.)
graph::Csr build_strategy_graph(const mesh::Mesh& mesh, Strategy strategy);

/// Run a full domain decomposition of `mesh`.
DomainDecomposition decompose(const mesh::Mesh& mesh,
                              const StrategyOptions& opts);

/// Recompute a decomposition's census/cut after its domain_of_cell was
/// edited externally (e.g. by repair_fragments or incremental
/// repartitioning).
void update_census(const mesh::Mesh& mesh, DomainDecomposition& dd);

/// Map domain ids to process ids.
std::vector<part_t> map_domains_to_processes(part_t ndomains,
                                             part_t nprocesses,
                                             DomainMapping mapping);

}  // namespace tamp::partition
