// Initial bisection by greedy graph growing (GGGP) with multi-constraint
// awareness.
//
// Several randomised trials grow a region from a random seed vertex,
// always absorbing the frontier vertex with the best combination of
// (a) cut gain and (b) contribution to the constraints still below their
// side-0 target, while never exceeding any constraint's allowance. The
// best trial — feasible first, then lowest cut — wins.
#pragma once

#include <vector>

#include "partition/balance.hpp"
#include "support/rng.hpp"

namespace tamp::partition {

/// Compute an initial 0/1 bisection of g. Returns the part vector; the
/// caller refines it with fm_refine_bisection().
std::vector<part_t> greedy_growing_bisection(const graph::Csr& g,
                                             const BalanceSpec& spec, Rng& rng,
                                             int trials);

}  // namespace tamp::partition
