// Multilevel 2-way partitioning (one V-cycle).
#pragma once

#include <vector>

#include "partition/partition.hpp"

namespace tamp::partition {

/// Bisect g, assigning `fraction0` of every constraint's weight to side 0.
/// Returns the 0/1 part vector; `cut_out` receives the final edge cut.
std::vector<part_t> multilevel_bisect(const graph::Csr& g, double fraction0,
                                      const Options& opts, Rng& rng,
                                      weight_t& cut_out);

}  // namespace tamp::partition
