// Multilevel 2-way partitioning (one V-cycle).
#pragma once

#include <vector>

#include "partition/partition.hpp"
#include "support/thread_pool.hpp"

namespace tamp::partition {

/// Bisect g, assigning `fraction0` of every constraint's weight to side 0.
/// Returns the 0/1 part vector; `cut_out` receives the final edge cut.
///
/// With a pool, the data-parallel stages (contraction, balance totals,
/// uncoarsening projection) run on it; matching, initial partitioning and
/// FM refinement stay sequential because their visit order is part of the
/// deterministic RNG stream. The result is bit-identical for any pool.
std::vector<part_t> multilevel_bisect(const graph::Csr& g, double fraction0,
                                      const Options& opts, Rng& rng,
                                      weight_t& cut_out,
                                      ThreadPool* pool = nullptr);

}  // namespace tamp::partition
