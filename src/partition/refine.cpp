#include "partition/refine.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "obs/metrics.hpp"
#include "partition/partition.hpp"

namespace tamp::partition {

namespace {

/// Lazy max-heap of (gain, vertex): entries are invalidated by comparing
/// against the current gain array on pop.
class GainHeap {
public:
  void push(weight_t gain, index_t v) { heap_.emplace(gain, v); }

  /// Pop the best entry whose recorded gain matches current[v] and which
  /// is neither locked nor filtered out; returns invalid_index when empty
  /// or after `max_rejections` inadmissible candidates (keeps each
  /// selection O(1) amortised even under tight multi-constraint guards).
  template <typename Admissible>
  index_t pop_best(const std::vector<weight_t>& current,
                   const std::vector<char>& locked, Admissible&& admissible,
                   std::vector<std::pair<weight_t, index_t>>& rejected,
                   int max_rejections = 64) {
    while (!heap_.empty()) {
      auto [gain, v] = heap_.top();
      heap_.pop();
      if (locked[static_cast<std::size_t>(v)]) continue;
      if (gain != current[static_cast<std::size_t>(v)]) continue;  // stale
      if (!admissible(v)) {
        rejected.emplace_back(gain, v);
        if (static_cast<int>(rejected.size()) >= max_rejections)
          return invalid_index;
        continue;
      }
      return v;
    }
    return invalid_index;
  }

  void push_all(const std::vector<std::pair<weight_t, index_t>>& entries) {
    for (const auto& [gain, v] : entries) heap_.emplace(gain, v);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  void clear() { heap_ = {}; }

private:
  std::priority_queue<std::pair<weight_t, index_t>> heap_;
};

struct MoveRecord {
  index_t vertex;
  int from_side;
};

}  // namespace

weight_t fm_refine_bisection(const graph::Csr& g, std::vector<part_t>& part,
                             const BalanceSpec& spec, Rng& /*rng*/,
                             int passes) {
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(part.size() == static_cast<std::size_t>(n),
               "partition vector size mismatch");
  const int nc = spec.ncon();

  std::vector<weight_t> gain(static_cast<std::size_t>(n), 0);
  std::vector<int> gain_pass(static_cast<std::size_t>(n), -1);
  std::vector<char> locked(static_cast<std::size_t>(n), 0);
  std::vector<weight_t> loads0(static_cast<std::size_t>(nc), 0);

  auto compute_loads = [&] {
    std::fill(loads0.begin(), loads0.end(), 0);
    for (index_t v = 0; v < n; ++v) {
      if (part[static_cast<std::size_t>(v)] == 0) {
        const auto w = g.vertex_weights(v);
        for (int c = 0; c < nc; ++c)
          loads0[static_cast<std::size_t>(c)] += w[static_cast<std::size_t>(c)];
      }
    }
  };
  auto compute_gain = [&](index_t v) {
    const part_t pv = part[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    weight_t external = 0, internal = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[static_cast<std::size_t>(nbrs[i])] == pv)
        internal += wgts[i];
      else
        external += wgts[i];
    }
    return external - internal;
  };
  auto apply_move = [&](index_t v) {
    const part_t from = part[static_cast<std::size_t>(v)];
    part[static_cast<std::size_t>(v)] = 1 - from;
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < nc; ++c) {
      const auto sc = static_cast<std::size_t>(c);
      loads0[sc] += from == 0 ? -w[sc] : w[sc];
    }
  };

  compute_loads();
  weight_t cut = edge_cut(g, part);

  // Early-termination budget: abandon a pass after this many consecutive
  // moves without a new best prefix (METIS-style; full hill climbs are
  // O(n) per pass and rarely pay off past a short plateau).
  const std::size_t plateau_limit =
      std::max<std::size_t>(128, static_cast<std::size_t>(n) / 64);

  for (int pass = 0; pass < passes; ++pass) {
    std::fill(locked.begin(), locked.end(), 0);
    GainHeap heap[2];
    const bool start_infeasible = !spec.feasible(loads0);
    for (index_t v = 0; v < n; ++v) {
      // Seed only boundary vertices: interior moves cannot reduce the cut
      // and become candidates automatically once a neighbour moves. When
      // the split is infeasible every vertex is a rebalancing candidate.
      bool boundary = false;
      const part_t pv = part[static_cast<std::size_t>(v)];
      for (const index_t u : g.neighbors(v)) {
        if (part[static_cast<std::size_t>(u)] != pv) {
          boundary = true;
          break;
        }
      }
      if (!boundary && !start_infeasible) continue;
      gain[static_cast<std::size_t>(v)] = compute_gain(v);
      gain_pass[static_cast<std::size_t>(v)] = pass;
      heap[pv].push(gain[static_cast<std::size_t>(v)], v);
    }

    std::vector<MoveRecord> moves;
    moves.reserve(static_cast<std::size_t>(n));
    weight_t running_cut = cut;
    // Best prefix: feasible beats infeasible; then lower cut; for
    // infeasible prefixes lower violation wins.
    bool best_feasible = spec.feasible(loads0);
    weight_t best_cut = cut;
    double best_violation = spec.violation(loads0);
    std::size_t best_prefix = 0;

    std::vector<std::pair<weight_t, index_t>> rejected;
    std::size_t since_best = 0;
    while (moves.size() < static_cast<std::size_t>(n)) {
      if (since_best > plateau_limit) break;
      const bool feasible_now = spec.feasible(loads0);
      index_t chosen = invalid_index;
      if (!feasible_now) {
        // Move out of the side with the larger violation contribution.
        double over[2] = {0.0, 0.0};
        for (int c = 0; c < nc; ++c) {
          const auto sc = static_cast<std::size_t>(c);
          const weight_t o0 = loads0[sc] - spec.allowed(0, c);
          const weight_t o1 =
              (spec.total(c) - loads0[sc]) - spec.allowed(1, c);
          if (o0 > 0) over[0] += static_cast<double>(o0);
          if (o1 > 0) over[1] += static_cast<double>(o1);
        }
        const int from = over[0] >= over[1] ? 0 : 1;
        // Admissible: strictly reduces the violation.
        const double current_violation = spec.violation(loads0);
        rejected.clear();
        chosen = heap[from].pop_best(
            gain, locked,
            [&](index_t v) {
              const auto w = g.vertex_weights(v);
              std::vector<weight_t> trial = loads0;
              for (int c = 0; c < nc; ++c) {
                const auto sc = static_cast<std::size_t>(c);
                trial[sc] += from == 0 ? -w[sc] : w[sc];
              }
              return spec.violation(trial) < current_violation;
            },
            rejected);
        heap[from].push_all(rejected);
        if (chosen == invalid_index) break;  // cannot rebalance further
      } else {
        // Prefer the higher top gain of the two heaps, requiring the move
        // to keep feasibility. Bounded skip scan per heap.
        for (int attempt = 0; attempt < 2 && chosen == invalid_index;
             ++attempt) {
          // Try both sides: first the one whose admissible top is better.
          index_t cand[2] = {invalid_index, invalid_index};
          std::vector<std::pair<weight_t, index_t>> rej[2];
          for (int s = 0; s < 2; ++s) {
            cand[s] = heap[s].pop_best(
                gain, locked,
                [&](index_t v) {
                  return spec.move_keeps_feasible(loads0, g.vertex_weights(v),
                                                  1 - s);
                },
                rej[s]);
          }
          if (cand[0] != invalid_index && cand[1] != invalid_index) {
            const weight_t g0 = gain[static_cast<std::size_t>(cand[0])];
            const weight_t g1 = gain[static_cast<std::size_t>(cand[1])];
            const int keep = g0 >= g1 ? 0 : 1;
            chosen = cand[keep];
            // Re-push the loser with its current gain.
            heap[1 - keep].push(gain[static_cast<std::size_t>(cand[1 - keep])],
                                cand[1 - keep]);
          } else {
            chosen = cand[0] != invalid_index ? cand[0] : cand[1];
          }
          for (int s = 0; s < 2; ++s) heap[s].push_all(rej[s]);
        }
        if (chosen == invalid_index) break;
      }

      // Execute the move.
      const int from = part[static_cast<std::size_t>(chosen)];
      running_cut -= gain[static_cast<std::size_t>(chosen)];
      apply_move(chosen);
      locked[static_cast<std::size_t>(chosen)] = 1;
      moves.push_back({chosen, from});

      // Update neighbour gains (computing them fresh on first touch this
      // pass — interior vertices were not seeded).
      const auto nbrs = g.neighbors(chosen);
      const auto wgts = g.edge_weights(chosen);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const index_t u = nbrs[i];
        if (locked[static_cast<std::size_t>(u)]) continue;
        if (gain_pass[static_cast<std::size_t>(u)] != pass) {
          // compute_gain sees the post-move part[], so it is current.
          gain[static_cast<std::size_t>(u)] = compute_gain(u);
          gain_pass[static_cast<std::size_t>(u)] = pass;
        } else if (part[static_cast<std::size_t>(u)] == from) {
          // chosen moved from `from` to `1-from`; for u in `from` the
          // edge became external (+2w gain), else internal (−2w).
          gain[static_cast<std::size_t>(u)] += 2 * wgts[i];
        } else {
          gain[static_cast<std::size_t>(u)] -= 2 * wgts[i];
        }
        heap[part[static_cast<std::size_t>(u)]].push(
            gain[static_cast<std::size_t>(u)], u);
      }

      // Evaluate this prefix.
      const bool f = spec.feasible(loads0);
      const double viol = f ? 0.0 : spec.violation(loads0);
      const bool better =
          (f && !best_feasible) ||
          (f == best_feasible &&
           (f ? running_cut < best_cut
              : viol < best_violation ||
                    (viol == best_violation && running_cut < best_cut)));
      if (better) {
        best_feasible = f;
        best_cut = running_cut;
        best_violation = viol;
        best_prefix = moves.size();
        since_best = 0;
      } else {
        ++since_best;
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = moves.size(); i > best_prefix; --i) {
      const MoveRecord& m = moves[i - 1];
      apply_move(m.vertex);  // flips back
    }
    TAMP_METRIC_COUNT("partition.refine.moves", best_prefix);
    const weight_t new_cut = best_cut;
    const bool improved = new_cut < cut || best_prefix > 0;
    cut = new_cut;
    if (!improved || best_prefix == 0) break;  // converged
  }
  return cut;
}

weight_t kway_refine(const graph::Csr& g, std::vector<part_t>& part,
                     part_t nparts, const std::vector<weight_t>& allowed,
                     Rng& rng, int passes) {
  const index_t n = g.num_vertices();
  const int nc = g.num_constraints();
  TAMP_EXPECTS(allowed.size() ==
                   static_cast<std::size_t>(nparts) * static_cast<std::size_t>(nc),
               "allowance table size mismatch");

  std::vector<weight_t> loads = part_loads(g, part, nparts);
  std::vector<weight_t> conn(static_cast<std::size_t>(nparts), 0);
  std::vector<part_t> touched;
  std::int64_t kway_moves = 0;  // recorded once at the end; see metrics.hpp

  for (int pass = 0; pass < passes; ++pass) {
    bool any_move = false;
    std::vector<index_t> order = random_permutation(n, rng);
    for (const index_t v : order) {
      const part_t a = part[static_cast<std::size_t>(v)];
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      touched.clear();
      bool boundary = false;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const part_t b = part[static_cast<std::size_t>(nbrs[i])];
        if (conn[static_cast<std::size_t>(b)] == 0) touched.push_back(b);
        conn[static_cast<std::size_t>(b)] += wgts[i];
        if (b != a) boundary = true;
      }
      if (boundary) {
        const weight_t internal = conn[static_cast<std::size_t>(a)];
        part_t best = invalid_part;
        weight_t best_gain = 0;
        const auto w = g.vertex_weights(v);
        for (const part_t b : touched) {
          if (b == a) continue;
          const weight_t gain = conn[static_cast<std::size_t>(b)] - internal;
          if (gain <= best_gain) continue;
          bool fits = true;
          for (int c = 0; c < nc; ++c) {
            const auto idx = static_cast<std::size_t>(b) * nc +
                             static_cast<std::size_t>(c);
            if (loads[idx] + w[static_cast<std::size_t>(c)] > allowed[idx]) {
              fits = false;
              break;
            }
          }
          if (fits) {
            best = b;
            best_gain = gain;
          }
        }
        if (best != invalid_part) {
          part[static_cast<std::size_t>(v)] = best;
          for (int c = 0; c < nc; ++c) {
            const auto sc = static_cast<std::size_t>(c);
            loads[static_cast<std::size_t>(a) * nc + sc] -= w[sc];
            loads[static_cast<std::size_t>(best) * nc + sc] += w[sc];
          }
          any_move = true;
          ++kway_moves;
        }
      }
      for (const part_t b : touched) conn[static_cast<std::size_t>(b)] = 0;
    }
    if (!any_move) break;
  }
  TAMP_METRIC_COUNT("partition.refine.kway_moves", kway_moves);
  static_cast<void>(kway_moves);
  return edge_cut(g, part);
}

}  // namespace tamp::partition
