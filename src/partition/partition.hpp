// Public interface of the multilevel multi-constraint graph partitioner.
//
// A from-scratch reimplementation of the algorithm family the paper uses
// through METIS (Karypis & Kumar multilevel scheme with multi-constraint
// support [11], [17]): heavy-edge-matching coarsening, greedy-graph-
// growing initial bisection, Fiduccia–Mattheyses boundary refinement with
// a per-constraint balance guard, applied through recursive bisection
// (the paper's choice, §V) or direct k-way refinement.
//
// The number of balance constraints is the graph's ncon: SC_OC passes
// one operating-cost weight per vertex; MC_TL passes one binary indicator
// per temporal level (paper §V).
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tamp::partition {

/// Top-level partitioning method.
enum class Method {
  recursive_bisection,  ///< paper's choice: higher quality on FV meshes
  kway_direct,          ///< RB seed + direct greedy k-way refinement
};

/// Knobs for partition_graph(). Defaults mirror METIS's.
struct Options {
  part_t nparts = 2;
  Method method = Method::recursive_bisection;
  /// Per-constraint load tolerance: each part may carry up to
  /// target · (1 + tolerance) (+ one max vertex weight of slack, which
  /// makes tiny constraint classes feasible, as METIS does).
  double tolerance = 0.05;
  /// Stop coarsening below this many vertices.
  index_t coarsen_to = 160;
  /// Independent randomised initial-bisection attempts; best kept.
  int initial_trials = 8;
  /// FM refinement passes per uncoarsening level.
  int refine_passes = 6;
  std::uint64_t seed = 1;
  /// Worker threads for the decomposition: >0 = that many, 0 = read the
  /// TAMP_PARTITION_THREADS environment variable (absent → 1), 1 = serial.
  /// Every thread count produces bit-identical partitions: each subtree of
  /// the recursive bisection draws from its own RNG derived from
  /// (seed, part_base, k), and the data-parallel loops combine per-chunk
  /// integer partials in a fixed order.
  int num_threads = 0;
};

/// Result of a partitioning run.
struct Result {
  std::vector<part_t> part;   ///< part id per vertex, in [0, nparts)
  weight_t edge_cut = 0;      ///< Σ weights of edges crossing parts
  /// loads[p * ncon + c] = Σ vwgt[c] of vertices in part p.
  std::vector<weight_t> loads;
  part_t nparts = 0;
  int ncon = 1;

  /// Worst imbalance over constraints: max_c max_p loads[p][c]·nparts /
  /// total[c]. 1.0 = perfect balance. Constraints with zero total are
  /// skipped.
  [[nodiscard]] double max_imbalance() const;
  /// Imbalance of one constraint.
  [[nodiscard]] double imbalance(int constraint) const;
};

/// Partition `g` into opts.nparts parts balancing all ncon constraints.
Result partition_graph(const graph::Csr& g, const Options& opts);

// --- quality metrics (also used standalone by benches) ---------------------

/// Σ weights of edges whose endpoints lie in different parts.
weight_t edge_cut(const graph::Csr& g, const std::vector<part_t>& part);

/// Per-part per-constraint loads, laid out part-major.
std::vector<weight_t> part_loads(const graph::Csr& g,
                                 const std::vector<part_t>& part,
                                 part_t nparts);

/// Worst per-constraint imbalance factor of a given assignment.
double max_imbalance(const graph::Csr& g, const std::vector<part_t>& part,
                     part_t nparts);

/// Communication volume between *processes* when domains are mapped to
/// processes round-robin (paper Fig 11b: an edge crossing two domains on
/// different processes counts as interprocess communication).
weight_t interprocess_comm(const graph::Csr& g, const std::vector<part_t>& part,
                           const std::vector<part_t>& domain_to_process);

}  // namespace tamp::partition
