// Fiduccia–Mattheyses boundary refinement.
//
// 2-way variant (used at every uncoarsening level): hill-climbing with
// per-move balance guard, move locking, and rollback to the best prefix;
// when the split is infeasible the pass prioritises restoring balance
// (moves out of overloaded sides) over cut improvement — this is what
// lets multi-constraint MC_TL partitions converge to feasibility.
//
// k-way variant (used by Method::kway_direct): greedy positive-gain moves
// of boundary vertices to adjacent parts under the same balance guard.
#pragma once

#include <vector>

#include "partition/balance.hpp"
#include "support/rng.hpp"

namespace tamp::partition {

/// Refine a 0/1 bisection in place. Returns the final cut.
weight_t fm_refine_bisection(const graph::Csr& g, std::vector<part_t>& part,
                             const BalanceSpec& spec, Rng& rng, int passes);

/// Greedy k-way boundary refinement under per-part allowances
/// allowed[p*ncon+c]. Returns the final cut.
weight_t kway_refine(const graph::Csr& g, std::vector<part_t>& part,
                     part_t nparts, const std::vector<weight_t>& allowed,
                     Rng& rng, int passes);

}  // namespace tamp::partition
