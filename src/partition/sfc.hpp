// Space-filling-curve geometric partitioning — the baseline family the
// paper's related work discusses (Zoltan's geometric methods, and the
// Cartesian-CFD SFC tradition of reference [1]).
//
// Cells are ordered along a 3-D Hilbert curve through their centroids and
// the ordered sequence is cut into k contiguous chunks of equal weight.
// Geometric methods ignore mesh connectivity: they are extremely fast and
// well balanced on their single weight, but cut more edges than the
// multilevel partitioner and — like SC_OC — know nothing about temporal
// levels. Included as a baseline for the ablation benches.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "support/types.hpp"

namespace tamp::partition {

/// Hilbert index of a point quantised to `bits` per axis (≤ 21).
/// Exposed for tests: adjacent indices are geometrically adjacent.
std::uint64_t hilbert_index_3d(double x, double y, double z,
                               int bits = 16);

/// Partition `mesh` into k parts by cutting the Hilbert ordering of the
/// cell centroids into contiguous runs of equal total `weight`
/// (weights.size() == num_cells; pass operating costs for an SC_OC-like
/// balance, or all-ones for cell-count balance).
std::vector<part_t> sfc_partition(const mesh::Mesh& mesh,
                                  const std::vector<weight_t>& weights,
                                  part_t nparts);

/// Convenience: SFC with operating-cost weights (geometric SC_OC).
std::vector<part_t> sfc_partition_operating_cost(const mesh::Mesh& mesh,
                                                 part_t nparts);

}  // namespace tamp::partition
