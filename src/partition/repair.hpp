// Post-processing repair of partitioner artefacts — the paper's §IX
// perspective: "develop post-processing techniques to minimize the
// artifacts produced by partitioners when constrained by many criteria.
// Indeed, they tend to create disconnected subdomains that increase the
// number of domain borders and, thus, the number of communications and
// tasks."
//
// repair_fragments() finds every connected fragment of every part, keeps
// each part's largest fragment, and migrates the small satellites into
// the neighbouring part they touch most — but only when the receiving
// part stays within a load allowance on every constraint, so MC_TL's
// level balance survives the cleanup.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace tamp::partition {

struct RepairOptions {
  /// A fragment may move into a part only if, for every constraint, the
  /// receiving part's load stays ≤ ideal·(1 + headroom) + max vertex
  /// weight.
  double headroom = 0.10;
  /// Only fragments holding at most this fraction of their part's
  /// vertices are candidates (the main body never moves).
  double max_fragment_fraction = 0.5;
  /// Repeat passes until stable, at most this many times.
  int max_passes = 3;
};

struct RepairReport {
  index_t fragments_before = 0;  ///< Σ over parts of (components − 1)
  index_t fragments_after = 0;
  index_t vertices_moved = 0;
  weight_t cut_before = 0;
  weight_t cut_after = 0;
};

/// Repair `part` in place. Returns what changed.
RepairReport repair_fragments(const graph::Csr& g, std::vector<part_t>& part,
                              part_t nparts, const RepairOptions& opts = {});

}  // namespace tamp::partition
