// Partition (cell → domain) persistence.
//
// Lets decompositions be cached, exchanged with external tools, and fed
// to the standalone flusim executable (mirroring the paper's FLUSIM,
// which takes "a domain decomposition" as an input file). Format: one
// line `tamp-partition <ncells> <ndomains>`, then one domain id per line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace tamp::partition {

void write_partition(const std::vector<part_t>& domain_of_cell,
                     part_t ndomains, std::ostream& os);
void save_partition(const std::vector<part_t>& domain_of_cell,
                    part_t ndomains, const std::string& path);

/// Returns the assignment; `ndomains_out` receives the declared count.
/// Throws runtime_failure on malformed input.
std::vector<part_t> read_partition(std::istream& is, part_t& ndomains_out);
std::vector<part_t> load_partition(const std::string& path,
                                   part_t& ndomains_out);

}  // namespace tamp::partition
