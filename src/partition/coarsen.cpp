#include "partition/coarsen.hpp"

#include <algorithm>
#include <cstdint>

namespace tamp::partition {

std::vector<index_t> heavy_edge_matching(const graph::Csr& g, Rng& rng) {
  const index_t n = g.num_vertices();
  std::vector<index_t> match(static_cast<std::size_t>(n), invalid_index);
  const std::vector<index_t> order = random_permutation(n, rng);

  for (const index_t v : order) {
    if (match[static_cast<std::size_t>(v)] != invalid_index) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    index_t best = invalid_index;
    weight_t best_w = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const index_t u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != invalid_index) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best != invalid_index) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }
  return match;
}

namespace {

/// Timestamped neighbour→slot scratch table (classic METIS technique;
/// avoids clearing between rows). One instance per thread: rows are
/// processed by exactly one thread, so the table never needs sharing.
struct SlotScratch {
  std::vector<index_t> slot;
  std::vector<std::uint64_t> stamp;
  std::uint64_t epoch = 0;

  void ensure(index_t ncoarse) {
    if (slot.size() < static_cast<std::size_t>(ncoarse)) {
      slot.resize(static_cast<std::size_t>(ncoarse));
      stamp.resize(static_cast<std::size_t>(ncoarse), 0);
    }
  }
};

SlotScratch& local_scratch() {
  thread_local SlotScratch scratch;
  return scratch;
}

/// Build the merged coarse adjacency rows for cv ∈ [cv_begin, cv_end)
/// into `adjncy`/`adjwgt` (appended) and record per-row sizes in `deg`.
/// Row content depends only on the matching (member order), never on the
/// chunking or thread schedule.
void build_rows(const graph::Csr& g, const std::vector<index_t>& fine_to_coarse,
                const std::vector<index_t>& members,
                const std::vector<eindex_t>& member_xadj, index_t ncoarse,
                index_t cv_begin, index_t cv_end, std::vector<index_t>& adjncy,
                std::vector<weight_t>& adjwgt, eindex_t* deg) {
  SlotScratch& scratch = local_scratch();
  scratch.ensure(ncoarse);
  for (index_t cv = cv_begin; cv < cv_end; ++cv) {
    ++scratch.epoch;
    const auto row_begin = static_cast<eindex_t>(adjncy.size());
    for (eindex_t m = member_xadj[static_cast<std::size_t>(cv)];
         m < member_xadj[static_cast<std::size_t>(cv) + 1]; ++m) {
      const index_t v = members[static_cast<std::size_t>(m)];
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const index_t cu = fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
        if (cu == cv) continue;  // internal edge disappears
        if (scratch.stamp[static_cast<std::size_t>(cu)] != scratch.epoch) {
          scratch.stamp[static_cast<std::size_t>(cu)] = scratch.epoch;
          scratch.slot[static_cast<std::size_t>(cu)] =
              static_cast<index_t>(adjncy.size() - row_begin);
          adjncy.push_back(cu);
          adjwgt.push_back(wgts[i]);
        } else {
          adjwgt[static_cast<std::size_t>(
              row_begin + scratch.slot[static_cast<std::size_t>(cu)])] +=
              wgts[i];
        }
      }
    }
    deg[cv - cv_begin] = static_cast<eindex_t>(adjncy.size()) - row_begin;
  }
}

}  // namespace

CoarseLevel contract(const graph::Csr& g, const std::vector<index_t>& match,
                     ThreadPool* pool) {
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(match.size() == static_cast<std::size_t>(n),
               "matching size mismatch");
  const int ncon = g.num_constraints();

  // Coarse numbering is order-dependent and stays sequential.
  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), invalid_index);
  index_t ncoarse = 0;
  for (index_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != invalid_index)
      continue;
    const index_t u = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = ncoarse;
    if (u != v) level.fine_to_coarse[static_cast<std::size_t>(u)] = ncoarse;
    ++ncoarse;
  }

  // Fine vertices grouped by coarse id (counting sort; cheap and serial).
  std::vector<index_t> members(static_cast<std::size_t>(n));
  std::vector<eindex_t> member_xadj(static_cast<std::size_t>(ncoarse) + 1, 0);
  for (index_t v = 0; v < n; ++v)
    ++member_xadj[static_cast<std::size_t>(
                      level.fine_to_coarse[static_cast<std::size_t>(v)]) +
                  1];
  for (index_t cv = 0; cv < ncoarse; ++cv)
    member_xadj[static_cast<std::size_t>(cv) + 1] +=
        member_xadj[static_cast<std::size_t>(cv)];
  {
    std::vector<eindex_t> cursor(member_xadj.begin(), member_xadj.end() - 1);
    for (index_t v = 0; v < n; ++v) {
      const index_t cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
      members[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cv)]++)] =
          v;
    }
  }

  // Sum vertex weight vectors into coarse vertices: each coarse vertex
  // owns its output slot, so chunks over cv parallelize race-free.
  std::vector<weight_t> vwgt(
      static_cast<std::size_t>(ncoarse) * static_cast<std::size_t>(ncon), 0);
  parallel_for(pool, 0, ncoarse, 8192, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t cv = b; cv < e; ++cv) {
      weight_t* out = vwgt.data() +
                      static_cast<std::size_t>(cv) * static_cast<std::size_t>(ncon);
      for (eindex_t m = member_xadj[static_cast<std::size_t>(cv)];
           m < member_xadj[static_cast<std::size_t>(cv) + 1]; ++m) {
        const auto w = g.vertex_weights(members[static_cast<std::size_t>(m)]);
        for (int c = 0; c < ncon; ++c) out[c] += w[static_cast<std::size_t>(c)];
      }
    }
  });

  // Merged coarse adjacency. Serial: append rows directly. Parallel:
  // chunks of coarse vertices build rows into chunk-local buffers, a
  // serial prefix sum places them, and a second sweep copies — the
  // concatenation order is the cv order, so both paths emit identical
  // arrays.
  std::vector<eindex_t> xadj(static_cast<std::size_t>(ncoarse) + 1, 0);
  std::vector<index_t> adjncy;
  std::vector<weight_t> adjwgt;

  if (pool == nullptr) {
    build_rows(g, level.fine_to_coarse, members, member_xadj, ncoarse, 0,
               ncoarse, adjncy, adjwgt, xadj.data() + 1);
    for (index_t cv = 0; cv < ncoarse; ++cv)
      xadj[static_cast<std::size_t>(cv) + 1] +=
          xadj[static_cast<std::size_t>(cv)];
  } else {
    constexpr std::int64_t kGrain = 2048;
    const std::int64_t nchunks =
        (static_cast<std::int64_t>(ncoarse) + kGrain - 1) / kGrain;
    std::vector<std::vector<index_t>> chunk_adjncy(
        static_cast<std::size_t>(nchunks));
    std::vector<std::vector<weight_t>> chunk_adjwgt(
        static_cast<std::size_t>(nchunks));
    pool->parallel_for(0, ncoarse, kGrain, [&](std::int64_t b, std::int64_t e) {
      const auto chunk = static_cast<std::size_t>(b / kGrain);
      build_rows(g, level.fine_to_coarse, members, member_xadj, ncoarse,
                 static_cast<index_t>(b), static_cast<index_t>(e),
                 chunk_adjncy[chunk], chunk_adjwgt[chunk],
                 xadj.data() + b + 1);
    });
    for (index_t cv = 0; cv < ncoarse; ++cv)
      xadj[static_cast<std::size_t>(cv) + 1] +=
          xadj[static_cast<std::size_t>(cv)];
    adjncy.resize(static_cast<std::size_t>(xadj[static_cast<std::size_t>(ncoarse)]));
    adjwgt.resize(adjncy.size());
    pool->parallel_for(0, nchunks, 1, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t c = b; c < e; ++c) {
        const auto off = static_cast<std::size_t>(
            xadj[static_cast<std::size_t>(c * kGrain)]);
        const auto& src_a = chunk_adjncy[static_cast<std::size_t>(c)];
        const auto& src_w = chunk_adjwgt[static_cast<std::size_t>(c)];
        std::copy(src_a.begin(), src_a.end(), adjncy.begin() + static_cast<std::ptrdiff_t>(off));
        std::copy(src_w.begin(), src_w.end(), adjwgt.begin() + static_cast<std::ptrdiff_t>(off));
      }
    });
  }

  level.graph = graph::Csr(ncoarse, ncon, std::move(xadj), std::move(adjncy),
                           std::move(adjwgt), std::move(vwgt));
  return level;
}

CoarseLevel coarsen_once(const graph::Csr& g, Rng& rng, ThreadPool* pool) {
  return contract(g, heavy_edge_matching(g, rng), pool);
}

}  // namespace tamp::partition
