#include "partition/coarsen.hpp"

#include <algorithm>

namespace tamp::partition {

std::vector<index_t> heavy_edge_matching(const graph::Csr& g, Rng& rng) {
  const index_t n = g.num_vertices();
  std::vector<index_t> match(static_cast<std::size_t>(n), invalid_index);
  const std::vector<index_t> order = random_permutation(n, rng);

  for (const index_t v : order) {
    if (match[static_cast<std::size_t>(v)] != invalid_index) continue;
    const auto nbrs = g.neighbors(v);
    const auto wgts = g.edge_weights(v);
    index_t best = invalid_index;
    weight_t best_w = -1;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const index_t u = nbrs[i];
      if (match[static_cast<std::size_t>(u)] != invalid_index) continue;
      if (wgts[i] > best_w) {
        best_w = wgts[i];
        best = u;
      }
    }
    if (best != invalid_index) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }
  return match;
}

CoarseLevel contract(const graph::Csr& g, const std::vector<index_t>& match) {
  const index_t n = g.num_vertices();
  TAMP_EXPECTS(match.size() == static_cast<std::size_t>(n),
               "matching size mismatch");
  const int ncon = g.num_constraints();

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), invalid_index);
  index_t ncoarse = 0;
  for (index_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != invalid_index)
      continue;
    const index_t u = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = ncoarse;
    if (u != v) level.fine_to_coarse[static_cast<std::size_t>(u)] = ncoarse;
    ++ncoarse;
  }

  // Sum vertex weight vectors into coarse vertices.
  std::vector<weight_t> vwgt(
      static_cast<std::size_t>(ncoarse) * static_cast<std::size_t>(ncon), 0);
  for (index_t v = 0; v < n; ++v) {
    const index_t cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto w = g.vertex_weights(v);
    for (int c = 0; c < ncon; ++c)
      vwgt[static_cast<std::size_t>(cv) * ncon + static_cast<std::size_t>(c)] +=
          w[static_cast<std::size_t>(c)];
  }

  // Build coarse adjacency, merging parallel edges with a timestamped
  // scratch table (classic METIS technique; avoids per-vertex hashing).
  std::vector<eindex_t> xadj;
  std::vector<index_t> adjncy;
  std::vector<weight_t> adjwgt;
  xadj.reserve(static_cast<std::size_t>(ncoarse) + 1);
  xadj.push_back(0);

  std::vector<index_t> slot_of(static_cast<std::size_t>(ncoarse),
                               invalid_index);
  // Fine vertices grouped by coarse id.
  std::vector<index_t> members(static_cast<std::size_t>(n));
  std::vector<eindex_t> member_xadj(static_cast<std::size_t>(ncoarse) + 1, 0);
  for (index_t v = 0; v < n; ++v)
    ++member_xadj[static_cast<std::size_t>(
                      level.fine_to_coarse[static_cast<std::size_t>(v)]) +
                  1];
  for (index_t cv = 0; cv < ncoarse; ++cv)
    member_xadj[static_cast<std::size_t>(cv) + 1] +=
        member_xadj[static_cast<std::size_t>(cv)];
  {
    std::vector<eindex_t> cursor(member_xadj.begin(), member_xadj.end() - 1);
    for (index_t v = 0; v < n; ++v) {
      const index_t cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
      members[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cv)]++)] =
          v;
    }
  }

  std::vector<index_t> touched;
  for (index_t cv = 0; cv < ncoarse; ++cv) {
    touched.clear();
    const auto row_begin = static_cast<eindex_t>(adjncy.size());
    for (eindex_t m = member_xadj[static_cast<std::size_t>(cv)];
         m < member_xadj[static_cast<std::size_t>(cv) + 1]; ++m) {
      const index_t v = members[static_cast<std::size_t>(m)];
      const auto nbrs = g.neighbors(v);
      const auto wgts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const index_t cu =
            level.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
        if (cu == cv) continue;  // internal edge disappears
        index_t& slot = slot_of[static_cast<std::size_t>(cu)];
        if (slot == invalid_index) {
          slot = static_cast<index_t>(adjncy.size() - row_begin);
          adjncy.push_back(cu);
          adjwgt.push_back(wgts[i]);
          touched.push_back(cu);
        } else {
          adjwgt[static_cast<std::size_t>(row_begin + slot)] += wgts[i];
        }
      }
    }
    for (const index_t cu : touched)
      slot_of[static_cast<std::size_t>(cu)] = invalid_index;
    xadj.push_back(static_cast<eindex_t>(adjncy.size()));
  }

  level.graph = graph::Csr(ncoarse, ncon, std::move(xadj), std::move(adjncy),
                           std::move(adjwgt), std::move(vwgt));
  return level;
}

CoarseLevel coarsen_once(const graph::Csr& g, Rng& rng) {
  return contract(g, heavy_edge_matching(g, rng));
}

}  // namespace tamp::partition
